//! The UVM manager: demand faulting, prefetch, advice, eviction.

use crate::config::UvmConfig;
use crate::hotness::BlockHotness;
use crate::page::{page_range, PAGE_SIZE};
use crate::state::DeviceState;
use crate::stats::UvmStats;
use accel_sim::{AccessKind, AccessOutcome, DeviceId, ResidencyAdvice, ResidencyModel};
use std::collections::BTreeMap;

/// The unified-virtual-memory manager.
///
/// Implements [`ResidencyModel`], so an [`accel_sim::Engine`] with a
/// `UvmManager` attached charges kernels for page faults, migrations and
/// evictions on every access to a registered managed range.
#[derive(Debug)]
pub struct UvmManager {
    config: UvmConfig,
    devices: Vec<DeviceState>,
    /// Registered managed allocations: base → length.
    allocs: BTreeMap<u64, u64>,
    /// Global LRU sequence counter.
    seq: u64,
    stats: UvmStats,
    hotness: BlockHotness,
    /// The device a forked lane manager serves (`None` for the session's
    /// shared manager).
    home: Option<DeviceId>,
}

impl UvmManager {
    /// Creates a manager with no devices registered.
    ///
    /// # Panics
    ///
    /// Panics when `config` violates its invariants.
    pub fn new(config: UvmConfig) -> Self {
        config.validate();
        let bin = config.hotness_bin_events;
        UvmManager {
            config,
            devices: Vec::new(),
            allocs: BTreeMap::new(),
            seq: 0,
            stats: UvmStats::default(),
            hotness: BlockHotness::new(bin),
            home: None,
        }
    }

    /// Registers a device with a managed-memory `budget` (bytes), host
    /// link bandwidth (GB/s), and fault-group latency (ns). Devices are
    /// indexed in registration order, matching engine device ids.
    pub fn add_device(&mut self, budget: u64, link_bandwidth_gbps: f64, fault_latency_ns: u64) {
        self.devices.push(DeviceState::new(
            budget,
            link_bandwidth_gbps,
            fault_latency_ns,
        ));
    }

    /// Shrinks or grows a device's managed budget (oversubscription knob).
    ///
    /// # Panics
    ///
    /// Panics when the device was never added.
    pub fn set_budget(&mut self, device: DeviceId, budget: u64) {
        self.devices[device.index()].budget = budget;
    }

    /// Number of devices registered.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A lane-local manager for `device`, mirroring `Tool::fork` in the
    /// sharded event hub: same config, same device table (budgets, link
    /// bandwidths, fault latencies), same registered managed allocations —
    /// but fresh residency, statistics and hotness, so a parallel lane
    /// driving `device` starts cold and accumulates its own state with no
    /// shared lock. Lane state folds back via [`UvmManager::merge`] at
    /// session end.
    ///
    /// `device` names the lane's home device; it is recorded for merge
    /// ordering and asserted to exist so a mis-pinned lane fails fast.
    ///
    /// # Panics
    ///
    /// Panics when `device` was never added.
    pub fn fork(&self, device: DeviceId) -> UvmManager {
        assert!(
            device.index() < self.devices.len(),
            "fork target {device:?} is not a registered UVM device"
        );
        UvmManager {
            config: self.config.clone(),
            devices: self
                .devices
                .iter()
                .map(|d| DeviceState::new(d.budget, d.link_bandwidth_gbps, d.fault_latency_ns))
                .collect(),
            allocs: self.allocs.clone(),
            seq: 0,
            stats: UvmStats::default(),
            hotness: self.hotness.fork(),
            home: Some(device),
        }
    }

    /// The home device this manager was forked for, if any.
    pub fn home_device(&self) -> Option<DeviceId> {
        self.home
    }

    /// Folds a lane manager's accumulated state into this one — the merge
    /// stage of the per-lane UVM shards, invoked at session end in
    /// ascending device-id order (each lane's stream is internally
    /// ordered, so the fold is deterministic). Statistics sum field-wise;
    /// hotness concatenates the lane's logical time axis after this one
    /// ([`BlockHotness::append_from`]), reproducing a sequential
    /// single-manager reference run that processed the lanes
    /// device-at-a-time. Residency state is *not* imported: a lane's
    /// pages belong to its private replica of the managed space and are
    /// dropped with it.
    pub fn merge(&mut self, other: &UvmManager) {
        self.stats.merge_from(&other.stats);
        self.hotness.append_from(&other.hotness);
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> UvmStats {
        self.stats
    }

    /// Resets statistics (budgets and residency stay).
    pub fn reset_stats(&mut self) {
        self.stats = UvmStats::default();
    }

    /// Resets the hotness accumulator (same bin width, fresh counts and
    /// clock). Paired with [`UvmManager::reset_stats`] by the session's
    /// analysis reset, so statistics and hotness always describe the
    /// same analysis window.
    pub fn reset_hotness(&mut self) {
        self.hotness = self.hotness.fork();
    }

    /// The hotness accumulator (Fig. 13 data source).
    pub fn hotness(&self) -> &BlockHotness {
        &self.hotness
    }

    /// Bytes resident on `device`.
    pub fn resident_bytes(&self, device: DeviceId) -> u64 {
        self.devices
            .get(device.index())
            .map_or(0, DeviceState::resident_bytes)
    }

    /// Clamps `[base, len)` to the registered allocation containing `base`.
    fn clamp_to_alloc(&self, base: u64, len: u64) -> Option<(u64, u64)> {
        let (&abase, &alen) = self.allocs.range(..=base).next_back()?;
        if base >= abase + alen {
            return None;
        }
        let end = (base + len).min(abase + alen);
        Some((base, end - base))
    }

    fn migration_ns(&self, st: &DeviceState, bytes: u64, efficiency: f64) -> u64 {
        (bytes as f64 / (st.link_bandwidth_gbps * efficiency)) as u64
    }

    /// Migrates the missing pages of `[base, len)` onto `device`.
    ///
    /// Returns `(pages_migrated, evict_result, groups)`.
    fn fault_in(
        &mut self,
        device: DeviceId,
        base: u64,
        len: u64,
    ) -> (u64, crate::state::EvictResult, u64) {
        let range = page_range(base, len);
        let mut seq = self.seq;
        let missing: Vec<u64> = {
            let st = &self.devices[device.index()];
            range.iter().filter(|p| !st.is_resident(*p)).collect()
        };
        let wb = self.config.writeback_fraction;
        let st = &mut self.devices[device.index()];
        // Refresh already-resident pages first (each with a distinct LRU
        // stamp — the LRU index is keyed by stamp), then fault the missing
        // pages in one at a time so that a range larger than the budget
        // evicts its own earliest pages — the intra-kernel thrashing that
        // makes oversubscribed object-level prefetching pathological in the
        // paper's Fig. 12.
        for p in range.iter() {
            seq += 1;
            st.touch(p, seq);
        }
        let mut evict = crate::state::EvictResult::default();
        for p in &missing {
            let e = st.make_room(PAGE_SIZE, wb);
            evict.pages += e.pages;
            evict.writeback_bytes += e.writeback_bytes;
            seq += 1;
            st.insert(*p, seq);
        }
        self.seq = seq + 1;
        let groups = (missing.len() as u64).div_ceil(self.config.fault_group_pages.max(1));
        (missing.len() as u64, evict, groups)
    }
}

impl ResidencyModel for UvmManager {
    fn is_managed(&self, addr: u64) -> bool {
        self.allocs
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &len)| addr < base + len)
    }

    fn on_kernel_access(
        &mut self,
        device: DeviceId,
        base: u64,
        len: u64,
        bytes: u64,
        _kind: AccessKind,
    ) -> AccessOutcome {
        if device.index() >= self.devices.len() {
            return AccessOutcome::HIT;
        }
        let Some((base, len)) = self.clamp_to_alloc(base, len) else {
            return AccessOutcome::HIT;
        };
        let records = bytes / 128; // warp-level records, for hotness only
        self.hotness.record(base, len, records.max(1));

        let (pages, evict, groups) = self.fault_in(device, base, len);
        if pages == 0 {
            return AccessOutcome::HIT;
        }
        let st = &self.devices[device.index()];
        let migrated = pages * PAGE_SIZE;
        let mut stall = groups * st.fault_latency_ns
            + self.migration_ns(st, migrated, self.config.demand_bw_efficiency);
        let evict_ns = self.migration_ns(st, evict.writeback_bytes, 1.0);
        stall += evict_ns;

        self.stats.fault_groups += groups;
        self.stats.demand_pages_in += pages;
        self.stats.pages_evicted += evict.pages;
        self.stats.fault_stall_ns += stall - evict_ns;
        self.stats.evict_stall_ns += evict_ns;

        AccessOutcome {
            extra_device_ns: stall,
            faults: groups,
            migrated_in_bytes: migrated,
            evicted_bytes: evict.pages * PAGE_SIZE,
        }
    }

    fn register(&mut self, base: u64, len: u64) {
        if len > 0 {
            self.allocs.insert(base, len);
        }
    }

    fn unregister(&mut self, base: u64) {
        if let Some(len) = self.allocs.remove(&base) {
            let range = page_range(base, len);
            for st in &mut self.devices {
                for p in range.iter() {
                    st.remove(p);
                }
            }
        }
    }

    fn prefetch(&mut self, device: DeviceId, base: u64, len: u64) -> u64 {
        if device.index() >= self.devices.len() {
            return 0;
        }
        let Some((base, len)) = self.clamp_to_alloc(base, len) else {
            return 0;
        };
        let (pages, evict, _groups) = self.fault_in(device, base, len);
        if pages == 0 {
            self.stats.prefetch_noops += 1;
            return 0;
        }
        let st = &self.devices[device.index()];
        let migrated = pages * PAGE_SIZE;
        let xfer = self.migration_ns(st, migrated, self.config.prefetch_bw_efficiency);
        // With free memory, prefetch DMA pipelines against compute (bulk
        // transfers overlap better). Under memory pressure — any eviction
        // in this call — the link is saturated and nothing is hidden; the
        // write-back serializes on top. This asymmetry is what turns
        // over-fetching object-level plans pathological at 3x
        // oversubscription (paper Fig. 12) while both plans win without
        // oversubscription (Fig. 11).
        let stall = if evict.pages > 0 {
            xfer + self.migration_ns(st, evict.writeback_bytes, 1.0)
        } else {
            let overlap = self.config.prefetch_overlap_for(migrated);
            ((xfer as f64) * (1.0 - overlap)) as u64
        } + self.config.prefetch_call_latency_ns;

        self.stats.prefetch_pages_in += pages;
        self.stats.pages_evicted += evict.pages;
        self.stats.prefetch_stall_ns += stall;
        stall
    }

    fn advise(&mut self, device: DeviceId, base: u64, len: u64, advice: ResidencyAdvice) {
        if device.index() >= self.devices.len() {
            return;
        }
        let Some((base, len)) = self.clamp_to_alloc(base, len) else {
            return;
        };
        let range = page_range(base, len);
        match advice {
            ResidencyAdvice::PinOnDevice => {
                // Pinning implies making the range resident first.
                let _ = self.fault_in(device, base, len);
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    st.set_pinned(p, true);
                }
            }
            ResidencyAdvice::PreferHost => {
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    st.set_pinned(p, false);
                    st.remove(p);
                }
            }
            ResidencyAdvice::ReadMostly => {
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    st.set_read_mostly(p, true);
                }
            }
            ResidencyAdvice::Unset => {
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    st.set_pinned(p, false);
                    st.set_read_mostly(p, false);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x4000_0000_0000;
    const MB: u64 = 1 << 20;

    fn manager(budget_mb: u64) -> UvmManager {
        let mut m = UvmManager::new(UvmConfig::default());
        m.add_device(budget_mb * MB, 24.0, 25_000);
        m
    }

    #[test]
    fn cold_access_faults_warm_access_hits() {
        let mut m = manager(512);
        m.register(BASE, 64 * MB);
        let cold = m.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert!(cold.faults > 0);
        assert_eq!(cold.migrated_in_bytes, 64 * MB);
        let warm = m.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert_eq!(warm, AccessOutcome::HIT);
    }

    #[test]
    fn unregistered_ranges_are_free() {
        let mut m = manager(512);
        let out = m.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT);
        assert!(!m.is_managed(BASE));
    }

    #[test]
    fn oversubscription_causes_eviction_and_thrash() {
        let mut m = manager(32); // 32 MiB budget
        m.register(BASE, 128 * MB); // 4x oversubscribed
        let first = m.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert!(first.evicted_bytes > 0, "64 MiB through 32 MiB must evict");
        // Re-touching the start now misses again: thrashing.
        let again = m.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Load);
        assert!(again.faults > 0, "evicted pages fault again");
    }

    #[test]
    fn prefetch_is_cheaper_than_demand_fault() {
        let mut a = manager(512);
        a.register(BASE, 64 * MB);
        let demand = a.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);

        let mut b = manager(512);
        b.register(BASE, 64 * MB);
        let stall = b.prefetch(DeviceId(0), BASE, 64 * MB);
        let after = b.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert_eq!(after, AccessOutcome::HIT, "prefetched pages are resident");
        assert!(
            stall * 3 < demand.extra_device_ns,
            "prefetch stall {stall} should be well under demand stall {}",
            demand.extra_device_ns
        );
    }

    #[test]
    fn prefetch_of_resident_range_is_noop() {
        let mut m = manager(512);
        m.register(BASE, MB);
        m.prefetch(DeviceId(0), BASE, MB);
        let stall = m.prefetch(DeviceId(0), BASE, MB);
        assert_eq!(stall, 0);
        assert_eq!(m.stats().prefetch_noops, 1);
    }

    #[test]
    fn pinned_ranges_survive_pressure() {
        let mut m = manager(4);
        m.register(BASE, 16 * MB);
        m.advise(DeviceId(0), BASE, 2 * MB, ResidencyAdvice::PinOnDevice);
        // Flood the rest of the budget several times over.
        m.on_kernel_access(
            DeviceId(0),
            BASE + 4 * MB,
            12 * MB,
            12 * MB,
            AccessKind::Load,
        );
        // The pinned prefix must still be resident: re-access is free.
        let out = m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT, "pinned pages never evicted");
    }

    #[test]
    fn unregister_drops_residency() {
        let mut m = manager(512);
        m.register(BASE, MB);
        m.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Load);
        assert!(m.resident_bytes(DeviceId(0)) >= MB);
        m.unregister(BASE);
        assert_eq!(m.resident_bytes(DeviceId(0)), 0);
        assert!(!m.is_managed(BASE));
    }

    #[test]
    fn clamping_respects_allocation_bounds() {
        let mut m = manager(512);
        m.register(BASE, MB);
        // Access claims 10 MiB but the allocation is 1 MiB; only 1 MiB moves.
        let out = m.on_kernel_access(DeviceId(0), BASE, 10 * MB, 10 * MB, AccessKind::Load);
        assert_eq!(out.migrated_in_bytes, MB);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = manager(512);
        m.register(BASE, 4 * MB);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        m.prefetch(DeviceId(0), BASE + 2 * MB, 2 * MB);
        let s = m.stats();
        assert!(s.demand_pages_in > 0);
        assert!(s.prefetch_pages_in > 0);
        assert_eq!(s.pages_in(), s.demand_pages_in + s.prefetch_pages_in);
        m.reset_stats();
        assert_eq!(m.stats().pages_in(), 0);
    }

    #[test]
    fn read_mostly_evicts_without_writeback() {
        let mut m = manager(2);
        m.register(BASE, 8 * MB);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        m.advise(DeviceId(0), BASE, 2 * MB, ResidencyAdvice::ReadMostly);
        let before = m.stats().evict_stall_ns;
        m.on_kernel_access(DeviceId(0), BASE + 2 * MB, 2 * MB, 2 * MB, AccessKind::Load);
        let after = m.stats().evict_stall_ns;
        assert_eq!(before, after, "read-mostly eviction skips write-back");
    }

    #[test]
    fn unknown_device_is_harmless() {
        let mut m = manager(16);
        m.register(BASE, MB);
        let out = m.on_kernel_access(DeviceId(7), BASE, MB, MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT);
        assert_eq!(m.prefetch(DeviceId(7), BASE, MB), 0);
    }

    fn two_device_manager(budget_mb: u64) -> UvmManager {
        let mut m = UvmManager::new(UvmConfig::default());
        m.add_device(budget_mb * MB, 24.0, 25_000);
        m.add_device(budget_mb * MB, 24.0, 25_000);
        m
    }

    #[test]
    fn fork_starts_cold_with_parent_config_and_allocs() {
        let mut parent = two_device_manager(64);
        parent.register(BASE, 16 * MB);
        parent.on_kernel_access(DeviceId(0), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        let mut lane = parent.fork(DeviceId(1));
        assert_eq!(lane.home_device(), Some(DeviceId(1)));
        assert_eq!(lane.device_count(), 2);
        assert!(lane.is_managed(BASE), "registrations travel with the fork");
        assert_eq!(lane.stats(), UvmStats::default(), "fresh statistics");
        assert_eq!(lane.resident_bytes(DeviceId(0)), 0, "fresh residency");
        // The fork services faults independently of the parent.
        let parent_before = parent.stats();
        let out = lane.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert!(out.faults > 0);
        assert_eq!(
            parent.stats(),
            parent_before,
            "parent untouched by lane activity"
        );
    }

    #[test]
    fn reset_hotness_clears_counts_and_clock_with_stats() {
        let mut m = manager(64);
        m.register(BASE, 4 * MB);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert!(m.hotness().events_seen() > 0);
        m.reset_stats();
        m.reset_hotness();
        assert_eq!(m.stats(), UvmStats::default());
        assert_eq!(m.hotness().events_seen(), 0);
        assert!(m.hotness().series().blocks.is_empty());
        assert_eq!(
            m.hotness().bin_events(),
            UvmConfig::default().hotness_bin_events,
            "bin width survives the reset"
        );
    }

    #[test]
    #[should_panic(expected = "not a registered UVM device")]
    fn fork_of_unknown_device_panics() {
        let m = manager(16);
        let _ = m.fork(DeviceId(3));
    }

    #[test]
    fn merge_folds_lane_stats_and_hotness_deterministically() {
        // Bin width 1 puts every lane stream on a bin boundary, so the
        // appended hotness axes line up exactly with the reference's
        // single clock (wider bins align whenever a lane's event count is
        // a bin multiple — see `BlockHotness::append_from`).
        let config = UvmConfig {
            hotness_bin_events: 1,
            ..UvmConfig::default()
        };
        let two_device_manager = |budget_mb: u64| {
            let mut m = UvmManager::new(config.clone());
            m.add_device(budget_mb * MB, 24.0, 25_000);
            m.add_device(budget_mb * MB, 24.0, 25_000);
            m
        };
        let mut parent = two_device_manager(512);
        parent.register(BASE, 8 * MB);
        let mut lane0 = parent.fork(DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));
        lane0.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        lane1.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);

        // The sequential single-manager reference: same accesses,
        // device-at-a-time, through one manager.
        let mut reference = two_device_manager(512);
        reference.register(BASE, 8 * MB);
        reference.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        reference.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);

        parent.merge(&lane0);
        parent.merge(&lane1);
        assert_eq!(parent.stats(), reference.stats());
        assert_eq!(parent.hotness().series(), reference.hotness().series());
        // Lane residency is private and never imported.
        assert_eq!(parent.resident_bytes(DeviceId(0)), 0);
        assert_eq!(parent.resident_bytes(DeviceId(1)), 0);
    }
}
