//! Per-device residency state with LRU eviction.

use crate::page::PAGE_SIZE;
use std::collections::{BTreeMap, HashMap};

/// Residency metadata of one device-resident page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageInfo {
    /// LRU stamp (global sequence number of the last touch).
    seq: u64,
    /// Pinned pages are never evicted (`cudaMemAdvise` preferred-location).
    pinned: bool,
    /// Read-mostly pages evict without write-back.
    read_mostly: bool,
}

/// Result of an eviction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictResult {
    /// Pages evicted.
    pub pages: u64,
    /// Bytes that required write-back (dirty, not read-mostly).
    pub writeback_bytes: u64,
}

/// Residency and LRU bookkeeping for one device.
///
/// Invariant: `resident.len() * PAGE_SIZE == resident_bytes`, and `lru`
/// mirrors `resident` exactly (one entry per unpinned or pinned page; the
/// pinned flag is honoured at eviction time).
#[derive(Debug, Default)]
pub struct DeviceState {
    /// Memory budget for managed pages, bytes.
    pub budget: u64,
    /// Host-link bandwidth, GB/s.
    pub link_bandwidth_gbps: f64,
    /// Peer-link (device↔device) bandwidth, GB/s — prices shared-range
    /// read duplications. Defaults to the host link.
    pub p2p_bandwidth_gbps: f64,
    /// Latency of one fault group, ns.
    pub fault_latency_ns: u64,
    resident: HashMap<u64, PageInfo>,
    /// seq → page index; BTreeMap gives O(log n) oldest-first scans.
    lru: BTreeMap<u64, u64>,
}

impl DeviceState {
    /// Creates a state with the given budget and link characteristics.
    pub fn new(budget: u64, link_bandwidth_gbps: f64, fault_latency_ns: u64) -> Self {
        DeviceState {
            budget,
            link_bandwidth_gbps,
            p2p_bandwidth_gbps: link_bandwidth_gbps,
            fault_latency_ns,
            resident: HashMap::new(),
            lru: BTreeMap::new(),
        }
    }

    /// Bytes of managed pages currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.len() as u64 * PAGE_SIZE
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// True when `page` is resident on this device.
    pub fn is_resident(&self, page: u64) -> bool {
        self.resident.contains_key(&page)
    }

    /// True when `page` is pinned.
    pub fn is_pinned(&self, page: u64) -> bool {
        self.resident.get(&page).is_some_and(|p| p.pinned)
    }

    /// Marks `page` resident with LRU stamp `seq`.
    pub fn insert(&mut self, page: u64, seq: u64) {
        if let Some(old) = self.resident.insert(
            page,
            PageInfo {
                seq,
                pinned: false,
                read_mostly: false,
            },
        ) {
            self.lru.remove(&old.seq);
        }
        self.lru.insert(seq, page);
    }

    /// Refreshes the LRU stamp of a resident page; no-op otherwise.
    pub fn touch(&mut self, page: u64, seq: u64) {
        if let Some(info) = self.resident.get_mut(&page) {
            self.lru.remove(&info.seq);
            info.seq = seq;
            self.lru.insert(seq, page);
        }
    }

    /// Pins or unpins a resident page.
    pub fn set_pinned(&mut self, page: u64, pinned: bool) {
        if let Some(info) = self.resident.get_mut(&page) {
            info.pinned = pinned;
        }
    }

    /// Marks a resident page read-mostly (no write-back on eviction).
    pub fn set_read_mostly(&mut self, page: u64, read_mostly: bool) {
        if let Some(info) = self.resident.get_mut(&page) {
            info.read_mostly = read_mostly;
        }
    }

    /// Drops a page outright (allocation freed), without write-back.
    pub fn remove(&mut self, page: u64) {
        if let Some(info) = self.resident.remove(&page) {
            self.lru.remove(&info.seq);
        }
    }

    /// Evicts least-recently-used unpinned pages until `need_bytes` fit in
    /// the budget. Returns how many pages went and how many bytes need
    /// write-back. `writeback_fraction` models the dirty ratio for pages
    /// not marked read-mostly.
    pub fn make_room(&mut self, need_bytes: u64, writeback_fraction: f64) -> EvictResult {
        self.make_room_logged(need_bytes, writeback_fraction, None)
    }

    /// Like [`DeviceState::make_room`], additionally appending each
    /// evicted page index to `victims` when given. The shared-range
    /// coherence path needs the identities to deregister evicted
    /// duplicates from the directory; the private path passes `None` and
    /// pays nothing.
    pub fn make_room_logged(
        &mut self,
        need_bytes: u64,
        writeback_fraction: f64,
        mut victims: Option<&mut Vec<u64>>,
    ) -> EvictResult {
        let mut result = EvictResult::default();
        if need_bytes > self.budget {
            // The kernel's own working set exceeds the budget; evict
            // everything evictable and let intra-kernel thrashing follow.
        }
        while self.resident_bytes() + need_bytes > self.budget {
            // Oldest unpinned page.
            let victim = self
                .lru
                .iter()
                .map(|(_, &p)| p)
                .find(|p| !self.is_pinned(*p));
            let Some(page) = victim else {
                break; // everything left is pinned
            };
            // Audited expect: the victim came out of `self.lru`, whose
            // entries are inserted/removed in lockstep with `resident` —
            // no workload input can desynchronize them.
            let info = self.resident.remove(&page).expect("victim resident");
            self.lru.remove(&info.seq);
            result.pages += 1;
            if !info.read_mostly {
                result.writeback_bytes += (PAGE_SIZE as f64 * writeback_fraction) as u64;
            }
            if let Some(log) = victims.as_deref_mut() {
                log.push(page);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(pages: u64) -> DeviceState {
        DeviceState::new(pages * PAGE_SIZE, 24.0, 25_000)
    }

    #[test]
    fn insert_touch_remove_round_trip() {
        let mut s = state(4);
        s.insert(10, 1);
        assert!(s.is_resident(10));
        assert_eq!(s.resident_bytes(), PAGE_SIZE);
        s.touch(10, 5);
        s.remove(10);
        assert!(!s.is_resident(10));
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut s = state(2);
        s.insert(1, 1);
        s.insert(2, 2);
        // Touch page 1 so page 2 becomes the LRU victim.
        s.touch(1, 3);
        let r = s.make_room(PAGE_SIZE, 0.5);
        assert_eq!(r.pages, 1);
        assert!(s.is_resident(1), "recently-touched page survives");
        assert!(!s.is_resident(2), "LRU page evicted");
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let mut s = state(2);
        s.insert(1, 1);
        s.insert(2, 2);
        s.set_pinned(1, true);
        let r = s.make_room(PAGE_SIZE, 0.5);
        assert_eq!(r.pages, 1);
        assert!(s.is_resident(1));
        assert!(!s.is_resident(2));
    }

    #[test]
    fn read_mostly_pages_skip_writeback() {
        let mut s = state(1);
        s.insert(1, 1);
        s.set_read_mostly(1, true);
        let r = s.make_room(PAGE_SIZE, 0.5);
        assert_eq!(r.pages, 1);
        assert_eq!(r.writeback_bytes, 0);
    }

    #[test]
    fn writeback_fraction_applies() {
        let mut s = state(1);
        s.insert(1, 1);
        let r = s.make_room(PAGE_SIZE, 0.5);
        assert_eq!(r.writeback_bytes, PAGE_SIZE / 2);
    }

    #[test]
    fn make_room_is_noop_when_space_exists() {
        let mut s = state(10);
        s.insert(1, 1);
        let r = s.make_room(PAGE_SIZE, 0.5);
        assert_eq!(r.pages, 0);
        assert!(s.is_resident(1));
    }

    #[test]
    fn all_pinned_stops_eviction() {
        let mut s = state(1);
        s.insert(1, 1);
        s.set_pinned(1, true);
        let r = s.make_room(PAGE_SIZE, 0.5);
        assert_eq!(r.pages, 0, "pinned page may not be evicted");
        assert!(s.is_resident(1));
    }

    #[test]
    fn make_room_logged_reports_victim_identities() {
        let mut s = state(2);
        s.insert(3, 1);
        s.insert(9, 2);
        let mut victims = Vec::new();
        let r = s.make_room_logged(2 * PAGE_SIZE, 0.0, Some(&mut victims));
        assert_eq!(r.pages, 2);
        assert_eq!(victims, vec![3, 9], "LRU order, oldest first");
        // The unlogged variant is byte-identical in effect.
        let mut t = state(2);
        t.insert(3, 1);
        t.insert(9, 2);
        assert_eq!(t.make_room(2 * PAGE_SIZE, 0.0), r);
    }

    #[test]
    fn reinsert_updates_stamp_without_duplicating() {
        let mut s = state(4);
        s.insert(7, 1);
        s.insert(7, 9);
        assert_eq!(s.resident_pages(), 1);
        // The old stamp must be gone from the LRU index.
        let r = s.make_room(4 * PAGE_SIZE, 0.0);
        assert_eq!(r.pages, 1);
    }
}
