//! Page and block geometry.
//!
//! UVM migrates at 64 KiB-page granularity (the driver's base migration
//! unit) and the paper's hotness analysis (Fig. 13) bins by 2 MiB virtual
//! blocks; both constants live here.

use serde::{Deserialize, Serialize};

/// Migration granularity: 64 KiB.
pub const PAGE_SIZE: u64 = 64 << 10;

/// Hotness/reporting granularity: 2 MiB.
pub const BLOCK_SIZE: u64 = 2 << 20;

/// Index of the page containing `addr`.
pub fn page_of_addr(addr: u64) -> u64 {
    addr / PAGE_SIZE
}

/// Index of the 2 MiB block containing `addr`.
pub fn block_of_addr(addr: u64) -> u64 {
    addr / BLOCK_SIZE
}

/// A half-open range of page indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageRange {
    /// First page index.
    pub first: u64,
    /// One past the last page index.
    pub end: u64,
}

impl PageRange {
    /// Number of pages.
    pub fn count(self) -> u64 {
        self.end - self.first
    }

    /// Iterates the page indices.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        self.first..self.end
    }

    /// Byte extent covered by the range.
    pub fn bytes(self) -> u64 {
        self.count() * PAGE_SIZE
    }
}

/// Pages overlapping the byte range `[base, base + len)`.
///
/// A zero-length range covers no pages.
pub fn page_range(base: u64, len: u64) -> PageRange {
    if len == 0 {
        return PageRange {
            first: page_of_addr(base),
            end: page_of_addr(base),
        };
    }
    PageRange {
        first: page_of_addr(base),
        end: page_of_addr(base + len - 1) + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        assert_eq!(page_of_addr(0), 0);
        assert_eq!(page_of_addr(PAGE_SIZE - 1), 0);
        assert_eq!(page_of_addr(PAGE_SIZE), 1);
        assert_eq!(block_of_addr(BLOCK_SIZE + 1), 1);
    }

    #[test]
    fn range_covers_partial_pages() {
        let r = page_range(100, 10);
        assert_eq!(r.count(), 1, "sub-page range still touches one page");
        let r = page_range(PAGE_SIZE - 1, 2);
        assert_eq!(r.count(), 2, "straddling range touches two pages");
    }

    #[test]
    fn zero_len_range_is_empty() {
        let r = page_range(12345, 0);
        assert_eq!(r.count(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn exact_page_boundaries() {
        let r = page_range(PAGE_SIZE, PAGE_SIZE);
        assert_eq!(r.first, 1);
        assert_eq!(r.end, 2);
        assert_eq!(r.bytes(), PAGE_SIZE);
    }

    #[test]
    fn block_holds_32_pages() {
        assert_eq!(BLOCK_SIZE / PAGE_SIZE, 32);
    }
}
