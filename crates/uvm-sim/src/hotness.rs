//! Per-block access-hotness tracking over logical time.
//!
//! Reproduces the data behind the paper's Fig. 13: access counts per 2 MiB
//! virtual block, binned by logical time (access-event index), revealing
//! long-lived hot blocks (parameters — prefetch/pin candidates) versus
//! short-lived bursts (transient data — eviction candidates).

use crate::page::{block_of_addr, BLOCK_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Running hotness accumulator.
#[derive(Debug, Default, Clone)]
pub struct BlockHotness {
    /// (block index, time bin) → access records.
    counts: BTreeMap<(u64, u64), u64>,
    events_seen: u64,
    bin_events: u64,
    /// Per-event `(base, len, records)` log, kept only by *lane* trackers
    /// ([`BlockHotness::fork_recording`]). It lets [`append_from`] replay
    /// the lane's stream event by event on the merged clock, which is the
    /// only way to reproduce the sequential single-manager reference when
    /// the seam between streams does not land on a bin boundary — binned
    /// counts cannot be split across a bin cut after the fact.
    ///
    /// [`append_from`]: BlockHotness::append_from
    log: Option<Vec<(u64, u64, u64)>>,
}

impl BlockHotness {
    /// Creates a tracker that bins logical time every `bin_events` events.
    pub fn new(bin_events: u64) -> Self {
        BlockHotness {
            counts: BTreeMap::new(),
            events_seen: 0,
            bin_events: bin_events.max(1),
            log: None,
        }
    }

    /// Records `records` accesses spread uniformly over `[base, base+len)`.
    pub fn record(&mut self, base: u64, len: u64, records: u64) {
        if let Some(log) = &mut self.log {
            log.push((base, len, records));
        }
        let bin = self.events_seen / self.bin_events;
        self.events_seen += 1;
        if len == 0 || records == 0 {
            return;
        }
        let first = block_of_addr(base);
        let last = block_of_addr(base + len - 1);
        let nblocks = last - first + 1;
        let per_block = (records / nblocks).max(1);
        for b in first..=last {
            *self.counts.entry((b, bin)).or_insert(0) += per_block;
        }
    }

    /// Number of record() calls so far (the logical clock).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The configured bin width, in events.
    pub fn bin_events(&self) -> u64 {
        self.bin_events
    }

    /// Folds another tracker's counts into this one, summing per
    /// (block, bin) cell. Both trackers keep their own logical clocks, so
    /// bin *t* of `other` lands in bin *t* here — the device-shard merge,
    /// where each shard binned its own device's access stream.
    pub fn merge_from(&mut self, other: &BlockHotness) {
        for (&key, &count) in &other.counts {
            *self.counts.entry(key).or_insert(0) += count;
        }
        self.events_seen += other.events_seen;
    }

    /// A fresh, state-empty tracker with the same bin width — the reset
    /// half of [`crate::UvmManager::reset_hotness`]. The fork keeps no
    /// event log, so a long-lived session accumulator stays O(bins).
    pub fn fork(&self) -> BlockHotness {
        BlockHotness::new(self.bin_events)
    }

    /// A fresh tracker with the same bin width that additionally logs
    /// every `record()` call — the hotness half of
    /// [`crate::UvmManager::fork`]. A lane lives for one parallel region,
    /// so the log is bounded by the lane's access count, and it buys the
    /// merge exact equality with the sequential reference at *any* seam
    /// (see [`BlockHotness::append_from`]).
    pub fn fork_recording(&self) -> BlockHotness {
        BlockHotness {
            log: Some(Vec::new()),
            ..BlockHotness::new(self.bin_events)
        }
    }

    /// Concatenates another tracker's logical time axis after this one —
    /// the deterministic per-lane UVM merge, laying lane streams one
    /// after another in merge (ascending device) order.
    ///
    /// When `other` carries an event log ([`fork_recording`]), the log is
    /// **replayed** through this tracker's own clock, reproducing a
    /// sequential single-manager reference run *exactly*: `other`'s first
    /// events continue this tracker's partial bin instead of being padded
    /// past it. (The padded concatenation shipped first — ISSUE 4 — was
    /// only equal to the reference when every lane stream happened to end
    /// on a bin boundary; off-boundary streams shifted every later bin.)
    ///
    /// A log-less `other` falls back to the padded concatenation:
    /// `other`'s bin *t* lands at `own_bins + t`, where `own_bins` is
    /// this tracker's clock rounded up to a bin boundary, and the clock
    /// pads to that boundary.
    ///
    /// [`fork_recording`]: BlockHotness::fork_recording
    pub fn append_from(&mut self, other: &BlockHotness) {
        if let Some(log) = &other.log {
            for &(base, len, records) in log {
                self.record(base, len, records);
            }
            return;
        }
        let offset = self.events_seen.div_ceil(self.bin_events);
        for (&(block, bin), &count) in &other.counts {
            *self.counts.entry((block, offset + bin)).or_insert(0) += count;
        }
        self.events_seen = offset * self.bin_events + other.events_seen;
    }

    /// Finalizes into a dense series for reporting.
    pub fn series(&self) -> HotnessSeries {
        let blocks: Vec<u64> = {
            let mut v: Vec<u64> = self.counts.keys().map(|&(b, _)| b).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let bins = self.counts.keys().map(|&(_, t)| t + 1).max().unwrap_or(0);
        let mut grid = vec![vec![0u64; bins as usize]; blocks.len()];
        for (&(b, t), &c) in &self.counts {
            // Audited expect: `blocks` is the sorted dedup of exactly
            // these keys' block components (built above), so every lookup
            // hits by construction — no input can make it miss.
            let bi = blocks.binary_search(&b).expect("block present");
            grid[bi][t as usize] += c;
        }
        HotnessSeries { blocks, grid }
    }
}

/// Dense (block × time-bin) hotness matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotnessSeries {
    /// Block indices (rows), ascending.
    pub blocks: Vec<u64>,
    /// `grid[row][bin]` = access records of `blocks[row]` in that bin.
    pub grid: Vec<Vec<u64>>,
}

impl HotnessSeries {
    /// Number of time bins.
    pub fn bins(&self) -> usize {
        self.grid.first().map_or(0, Vec::len)
    }

    /// Total records of one block across all bins.
    pub fn block_total(&self, row: usize) -> u64 {
        self.grid[row].iter().sum()
    }

    /// Fraction of bins in which the block was accessed at all; near 1.0
    /// means long-lived hot data (pin candidates), near 0 bursty data
    /// (eviction candidates).
    pub fn block_liveness(&self, row: usize) -> f64 {
        let bins = self.bins();
        if bins == 0 {
            return 0.0;
        }
        let live = self.grid[row].iter().filter(|&&c| c > 0).count();
        live as f64 / bins as f64
    }

    /// Rows whose liveness is at least `threshold`, i.e. the paper's
    /// "frequently accessed throughout the entire execution" blocks.
    pub fn persistent_blocks(&self, threshold: f64) -> Vec<u64> {
        (0..self.blocks.len())
            .filter(|&r| self.block_liveness(r) >= threshold)
            .map(|r| self.blocks[r])
            .collect()
    }

    /// Base address of row `row`'s block.
    pub fn block_addr(&self, row: usize) -> u64 {
        self.blocks[row] * BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_right_block_and_bin() {
        let mut h = BlockHotness::new(2);
        h.record(0, 100, 10); // block 0, bin 0
        h.record(BLOCK_SIZE, 100, 20); // block 1, bin 0
        h.record(0, 100, 30); // block 0, bin 1
        let s = h.series();
        assert_eq!(s.blocks, vec![0, 1]);
        assert_eq!(s.bins(), 2);
        assert_eq!(s.grid[0], vec![10, 30]);
        assert_eq!(s.grid[1], vec![20, 0]);
    }

    #[test]
    fn multi_block_ranges_spread_records() {
        let mut h = BlockHotness::new(10);
        h.record(0, 4 * BLOCK_SIZE, 400);
        let s = h.series();
        assert_eq!(s.blocks.len(), 4);
        for row in 0..4 {
            assert_eq!(s.block_total(row), 100);
        }
    }

    #[test]
    fn liveness_separates_persistent_from_bursty() {
        let mut h = BlockHotness::new(1);
        for _ in 0..10 {
            h.record(0, 100, 5); // block 0 hot in every bin
        }
        h.record(BLOCK_SIZE, 100, 500); // block 1 hot once
        let s = h.series();
        let b0 = s.blocks.iter().position(|&b| b == 0).unwrap();
        let b1 = s.blocks.iter().position(|&b| b == 1).unwrap();
        assert!(s.block_liveness(b0) > 0.8);
        assert!(s.block_liveness(b1) < 0.2);
        assert_eq!(s.persistent_blocks(0.8), vec![0]);
    }

    #[test]
    fn zero_records_only_advance_clock() {
        let mut h = BlockHotness::new(1);
        h.record(0, 0, 0);
        h.record(0, 100, 0);
        assert_eq!(h.events_seen(), 2);
        assert_eq!(h.series().blocks.len(), 0);
    }

    #[test]
    fn empty_series_is_sane() {
        let s = BlockHotness::new(4).series();
        assert_eq!(s.bins(), 0);
        assert!(s.persistent_blocks(0.5).is_empty());
    }

    #[test]
    fn fork_is_empty_with_same_bin_width() {
        let mut h = BlockHotness::new(7);
        h.record(0, 100, 10);
        let f = h.fork();
        assert_eq!(f.bin_events(), 7);
        assert_eq!(f.events_seen(), 0);
        assert!(f.series().blocks.is_empty());
    }

    #[test]
    fn append_concatenates_lane_time_axes() {
        // Lane 0: 2 events in bin 0 (bin width 2). Lane 1: 2 events,
        // also its own bin 0 — appended, they land in bin 1.
        let mut a = BlockHotness::new(2);
        a.record(0, 100, 10);
        a.record(0, 100, 10);
        let mut b = BlockHotness::new(2);
        b.record(BLOCK_SIZE, 100, 5);
        b.record(BLOCK_SIZE, 100, 5);
        a.append_from(&b);
        let s = a.series();
        assert_eq!(s.blocks, vec![0, 1]);
        assert_eq!(s.grid[0], vec![20, 0], "lane 0 stays in bin 0");
        assert_eq!(s.grid[1], vec![0, 10], "lane 1 shifted to bin 1");
        assert_eq!(a.events_seen(), 4);
    }

    #[test]
    fn append_equals_sequential_single_clock_on_bin_boundaries() {
        // When each lane's event count is a multiple of the bin width,
        // fork+append reproduces one tracker that processed the lanes
        // back to back — the sequential single-manager reference.
        let mut reference = BlockHotness::new(2);
        let mut lane0 = BlockHotness::new(2);
        let mut lane1 = BlockHotness::new(2);
        for i in 0..4u64 {
            reference.record(i * BLOCK_SIZE, 64, 3);
            lane0.record(i * BLOCK_SIZE, 64, 3);
        }
        for i in 0..6u64 {
            reference.record(i * BLOCK_SIZE, 64, 9);
            lane1.record(i * BLOCK_SIZE, 64, 9);
        }
        let mut merged = lane0.fork();
        merged.append_from(&lane0);
        merged.append_from(&lane1);
        assert_eq!(merged.series(), reference.series());
        assert_eq!(merged.events_seen(), reference.events_seen());
    }

    #[test]
    fn recorded_fork_replays_exactly_across_partial_bins() {
        // The ISSUE 5 satellite bugfix: lane streams that do NOT land on
        // bin boundaries. Bin width 4; the parent ends mid-bin (3 events)
        // and both lanes end mid-bin too (5 and 2 events). The padded
        // concatenation shifted every appended bin; the replay path must
        // be byte-identical to one tracker that saw the whole stream on a
        // single clock.
        let mut reference = BlockHotness::new(4);
        let mut parent = BlockHotness::new(4);
        for i in 0..3u64 {
            reference.record(i * BLOCK_SIZE, 64, 2);
            parent.record(i * BLOCK_SIZE, 64, 2);
        }
        let mut lane0 = parent.fork_recording();
        for i in 0..5u64 {
            reference.record(i * BLOCK_SIZE, 64, 7);
            lane0.record(i * BLOCK_SIZE, 64, 7);
        }
        let mut lane1 = parent.fork_recording();
        for i in 0..2u64 {
            reference.record((i + 1) * BLOCK_SIZE, 64, 11);
            lane1.record((i + 1) * BLOCK_SIZE, 64, 11);
        }
        parent.append_from(&lane0);
        parent.append_from(&lane1);
        assert_eq!(parent.series(), reference.series());
        assert_eq!(parent.events_seen(), reference.events_seen());
        assert_eq!(parent.events_seen(), 10, "no boundary padding");
    }

    #[test]
    fn recorded_fork_replays_zero_record_clock_ticks() {
        // Clock-only events (len/records 0) must survive the replay, or
        // the merged clock drifts from the reference.
        let mut reference = BlockHotness::new(2);
        reference.record(0, 64, 1);
        reference.record(0, 0, 0);
        reference.record(BLOCK_SIZE, 64, 3);
        let mut parent = BlockHotness::new(2);
        parent.record(0, 64, 1);
        let mut lane = parent.fork_recording();
        lane.record(0, 0, 0);
        lane.record(BLOCK_SIZE, 64, 3);
        parent.append_from(&lane);
        assert_eq!(parent.series(), reference.series());
        assert_eq!(parent.events_seen(), 3);
    }

    #[test]
    fn fork_recording_chains_through_intermediate_merges() {
        // A recording tracker that absorbed another recording tracker can
        // itself be appended later — the replay appends into the log.
        let mut a = BlockHotness::new(3);
        let mut b = a.fork_recording();
        let mut c = a.fork_recording();
        b.record(0, 64, 1);
        c.record(BLOCK_SIZE, 64, 2);
        b.append_from(&c);
        let mut reference = BlockHotness::new(3);
        reference.record(0, 64, 1);
        reference.record(BLOCK_SIZE, 64, 2);
        a.append_from(&b);
        assert_eq!(a.series(), reference.series());
    }

    #[test]
    fn append_rounds_a_partial_bin_up() {
        // 3 events at bin width 2 occupy bins 0..2; the appended lane
        // must start at bin 2, not overlap the partial bin 1.
        let mut a = BlockHotness::new(2);
        for _ in 0..3 {
            a.record(0, 64, 1);
        }
        let mut b = BlockHotness::new(2);
        b.record(0, 64, 1);
        a.append_from(&b);
        let s = a.series();
        assert_eq!(s.grid[0], vec![2, 1, 1]);
        assert_eq!(a.events_seen(), 5, "clock padded to the bin boundary");
    }
}
