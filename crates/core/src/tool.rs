//! The tool-collection template.
//!
//! A [`Tool`] is "a customized analysis built by overriding functions in
//! the PASTA tool collection template" (paper §III-B). Every callback has
//! a no-op default; a tool overrides only what it needs and declares its
//! [`Interest`]s so the framework instruments no more than necessary.

use crate::event::Event;
use crate::report::ToolReport;
use accel_sim::{AccessBatch, KernelTraceSummary, LaunchId, ProbeConfig};
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Event classes a tool wants delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interest {
    /// Global-memory access batches (fine-grained, device-side).
    pub global_accesses: bool,
    /// Shared-memory access batches.
    pub shared_accesses: bool,
    /// Barrier executions.
    pub barriers: bool,
    /// Thread-block boundaries.
    pub block_boundaries: bool,
    /// Dynamic-instruction counts (requires a full-coverage backend).
    pub instructions: bool,
    /// Coarse host events (launches, copies, allocs, syncs).
    pub host_events: bool,
    /// DL-framework events (ops, tensors, passes, annotations).
    pub framework_events: bool,
}

impl Interest {
    /// Host + framework events only — the cheap default.
    pub fn coarse() -> Self {
        Interest {
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
    }

    /// Everything, including fine-grained device events.
    pub fn all() -> Self {
        Interest {
            global_accesses: true,
            shared_accesses: true,
            barriers: true,
            block_boundaries: true,
            instructions: true,
            host_events: true,
            framework_events: true,
        }
    }

    /// Union of two interest sets.
    pub fn union(self, o: Interest) -> Interest {
        Interest {
            global_accesses: self.global_accesses || o.global_accesses,
            shared_accesses: self.shared_accesses || o.shared_accesses,
            barriers: self.barriers || o.barriers,
            block_boundaries: self.block_boundaries || o.block_boundaries,
            instructions: self.instructions || o.instructions,
            host_events: self.host_events || o.host_events,
            framework_events: self.framework_events || o.framework_events,
        }
    }

    /// Device-side probe configuration implied by this interest set.
    pub fn probe_config(self) -> ProbeConfig {
        let mut c = ProbeConfig::disabled();
        c.global_accesses = self.global_accesses;
        c.shared_accesses = self.shared_accesses;
        c.barriers = self.barriers;
        c.block_boundaries = self.block_boundaries;
        c
    }

    /// True when any fine-grained device class is requested.
    pub fn wants_device_events(self) -> bool {
        self.global_accesses
            || self.shared_accesses
            || self.barriers
            || self.block_boundaries
            || self.instructions
    }
}

/// The analysis-tool template. All handlers default to no-ops.
pub trait Tool: Send {
    /// Unique tool name (used for selection, like the paper's
    /// `accelprof -t <tool>` flag).
    fn name(&self) -> &str;

    /// Which event classes to deliver (and therefore instrument).
    fn interest(&self) -> Interest {
        Interest::coarse()
    }

    /// Generic event delivery; the default demultiplexes to the typed
    /// handlers below, so tools can override either granularity.
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::GlobalAccess {
                launch,
                kernel,
                batch,
            } => self.on_global_access(*launch, kernel, batch),
            Event::SharedAccess {
                launch,
                kernel,
                batch,
            } => self.on_shared_access(*launch, kernel, batch),
            Event::KernelTrace {
                launch,
                kernel,
                summary,
            } => self.on_kernel_trace(*launch, kernel, summary),
            _ => {}
        }
    }

    /// One batch of global-memory access records.
    fn on_global_access(&mut self, launch: LaunchId, kernel: &str, batch: &AccessBatch) {
        let _ = (launch, kernel, batch);
    }

    /// One batch of shared-memory access records.
    fn on_shared_access(&mut self, launch: LaunchId, kernel: &str, batch: &AccessBatch) {
        let _ = (launch, kernel, batch);
    }

    /// End-of-kernel trace summary.
    fn on_kernel_trace(&mut self, launch: LaunchId, kernel: &str, summary: &KernelTraceSummary) {
        let _ = (launch, kernel, summary);
    }

    /// Produces the tool's report.
    fn report(&self) -> ToolReport {
        ToolReport::new(self.name())
    }

    /// Clears accumulated state between runs.
    fn reset(&mut self) {}

    /// Downcasting support (used by
    /// [`crate::PastaSession::with_tool_mut`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An ordered collection of tools sharing one event stream.
#[derive(Default)]
pub struct ToolCollection {
    tools: Vec<Box<dyn Tool>>,
}

impl std::fmt::Debug for ToolCollection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolCollection")
            .field(
                "tools",
                &self
                    .tools
                    .iter()
                    .map(|t| t.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ToolCollection {
    /// An empty collection.
    pub fn new() -> Self {
        ToolCollection::default()
    }

    /// Registers a tool.
    pub fn register(&mut self, tool: Box<dyn Tool>) {
        self.tools.push(tool);
    }

    /// Number of registered tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// True when no tools are registered.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Union of all tools' interests.
    pub fn interest(&self) -> Interest {
        self.tools
            .iter()
            .fold(Interest::default(), |acc, t| acc.union(t.interest()))
    }

    /// Delivers an event to every tool whose interest covers its class.
    pub fn dispatch(&mut self, event: &Event) {
        use crate::event::EventClass;
        let class = event.class();
        for tool in &mut self.tools {
            let i = tool.interest();
            let wants = match class {
                EventClass::DeviceAccess => i.global_accesses || i.shared_accesses,
                EventClass::DeviceControl => {
                    i.barriers || i.block_boundaries || i.instructions || i.global_accesses
                    // kernel summaries ride along
                }
                EventClass::Framework | EventClass::Annotation => i.framework_events,
                _ => i.host_events,
            };
            if wants {
                tool.on_event(event);
            }
        }
    }

    /// Reports from every tool, in registration order.
    pub fn reports(&self) -> Vec<ToolReport> {
        self.tools.iter().map(|t| t.report()).collect()
    }

    /// Resets every tool.
    pub fn reset(&mut self) {
        for t in &mut self.tools {
            t.reset();
        }
    }

    /// Runs `f` against the named tool downcast to `T`.
    pub fn with_tool_mut<T: Tool + 'static, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        self.tools
            .iter_mut()
            .find(|t| t.name() == name)
            .and_then(|t| t.as_any_mut().downcast_mut::<T>())
            .map(f)
    }
}

/// The smallest useful tool: counts kernel launches. Doubles as the
/// doc-example tool and a test fixture.
#[derive(Debug, Default)]
pub struct LaunchCounter {
    /// Kernel launches observed.
    pub launches: u64,
}

impl Tool for LaunchCounter {
    fn name(&self) -> &str {
        "launch-counter"
    }

    fn on_event(&mut self, event: &Event) {
        if matches!(event, Event::KernelLaunchEnd { .. }) {
            self.launches += 1;
        }
    }

    fn report(&self) -> ToolReport {
        ToolReport::new(self.name()).metric("launches", self.launches as f64)
    }

    fn reset(&mut self) {
        self.launches = 0;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, SimTime};

    fn launch_end() -> Event {
        Event::KernelLaunchEnd {
            launch: LaunchId(0),
            device: DeviceId(0),
            name: "k".into(),
            start: SimTime(0),
            end: SimTime(10),
        }
    }

    #[test]
    fn interest_union_and_probe_config() {
        let a = Interest {
            global_accesses: true,
            ..Interest::default()
        };
        let b = Interest {
            barriers: true,
            host_events: true,
            ..Interest::default()
        };
        let u = a.union(b);
        assert!(u.global_accesses && u.barriers && u.host_events);
        assert!(u.wants_device_events());
        let pc = u.probe_config();
        assert!(pc.global_accesses && pc.barriers);
        assert!(!pc.shared_accesses);
        assert!(!Interest::coarse().wants_device_events());
    }

    #[test]
    fn interest_union_is_commutative_and_idempotent() {
        let a = Interest {
            shared_accesses: true,
            instructions: true,
            ..Interest::default()
        };
        let b = Interest {
            block_boundaries: true,
            framework_events: true,
            ..Interest::default()
        };
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(a), a);
        // The empty interest is the identity element.
        assert_eq!(a.union(Interest::default()), a);
        // `all` absorbs everything.
        assert_eq!(a.union(Interest::all()), Interest::all());
    }

    #[test]
    fn probe_config_covers_exactly_the_device_access_classes() {
        // Every probe-visible class maps through; the host/framework/
        // instruction classes never enable device probes.
        let pc = Interest::all().probe_config();
        assert!(pc.global_accesses && pc.shared_accesses && pc.barriers && pc.block_boundaries);
        let none = Interest {
            instructions: true,
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
        .probe_config();
        assert!(
            !none.global_accesses
                && !none.shared_accesses
                && !none.barriers
                && !none.block_boundaries
        );
        assert_eq!(Interest::default().probe_config(), ProbeConfig::disabled());
    }

    #[test]
    fn collection_dispatch_and_downcast() {
        let mut c = ToolCollection::new();
        c.register(Box::<LaunchCounter>::default());
        assert_eq!(c.len(), 1);
        c.dispatch(&launch_end());
        c.dispatch(&launch_end());
        let n = c
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 2);
        assert!(c
            .with_tool_mut("missing", |t: &mut LaunchCounter| t.launches)
            .is_none());
        let reports = c.reports();
        assert_eq!(reports[0].get("launches"), Some(2.0));
        c.reset();
        let n = c
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn dispatch_respects_interest() {
        #[derive(Default)]
        struct FrameworkOnly {
            framework: u64,
            other: u64,
        }
        impl Tool for FrameworkOnly {
            fn name(&self) -> &str {
                "fw-only"
            }
            fn interest(&self) -> Interest {
                Interest {
                    framework_events: true,
                    ..Interest::default()
                }
            }
            fn on_event(&mut self, event: &Event) {
                match event.class() {
                    crate::event::EventClass::Framework => self.framework += 1,
                    _ => self.other += 1,
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut c = ToolCollection::new();
        c.register(Box::<FrameworkOnly>::default());
        c.dispatch(&launch_end()); // Kernel class — filtered out
        c.dispatch(&Event::PassBoundary {
            pass: dl_framework::callbacks::Pass::Forward,
            device: DeviceId(0),
        });
        let (fw, other) = c
            .with_tool_mut("fw-only", |t: &mut FrameworkOnly| (t.framework, t.other))
            .unwrap();
        assert_eq!(fw, 1);
        assert_eq!(other, 0, "uninterested classes never delivered");
    }
}
