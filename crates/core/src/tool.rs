//! The tool-collection template.
//!
//! A [`Tool`] is "a customized analysis built by overriding functions in
//! the PASTA tool collection template" (paper §III-B). Every callback has
//! a no-op default; a tool overrides only what it needs and declares its
//! [`Interest`]s so the framework instruments no more than necessary.

use crate::event::{Event, EventClass};
use crate::report::{ToolQuarantine, ToolReport};
use accel_sim::{panic_message, AccessBatch, KernelTraceSummary, LaunchId, ProbeConfig, Symbol};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Event classes a tool wants delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interest {
    /// Global-memory access batches (fine-grained, device-side).
    pub global_accesses: bool,
    /// Shared-memory access batches.
    pub shared_accesses: bool,
    /// Barrier executions.
    pub barriers: bool,
    /// Thread-block boundaries.
    pub block_boundaries: bool,
    /// Dynamic-instruction counts (requires a full-coverage backend).
    pub instructions: bool,
    /// Coarse host events (launches, copies, allocs, syncs).
    pub host_events: bool,
    /// DL-framework events (ops, tensors, passes, annotations).
    pub framework_events: bool,
}

impl Interest {
    /// Host + framework events only — the cheap default.
    pub fn coarse() -> Self {
        Interest {
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
    }

    /// Everything, including fine-grained device events.
    pub fn all() -> Self {
        Interest {
            global_accesses: true,
            shared_accesses: true,
            barriers: true,
            block_boundaries: true,
            instructions: true,
            host_events: true,
            framework_events: true,
        }
    }

    /// Union of two interest sets.
    pub fn union(self, o: Interest) -> Interest {
        Interest {
            global_accesses: self.global_accesses || o.global_accesses,
            shared_accesses: self.shared_accesses || o.shared_accesses,
            barriers: self.barriers || o.barriers,
            block_boundaries: self.block_boundaries || o.block_boundaries,
            instructions: self.instructions || o.instructions,
            host_events: self.host_events || o.host_events,
            framework_events: self.framework_events || o.framework_events,
        }
    }

    /// Device-side probe configuration implied by this interest set.
    pub fn probe_config(self) -> ProbeConfig {
        let mut c = ProbeConfig::disabled();
        c.global_accesses = self.global_accesses;
        c.shared_accesses = self.shared_accesses;
        c.barriers = self.barriers;
        c.block_boundaries = self.block_boundaries;
        c
    }

    /// True when any fine-grained device class is requested.
    pub fn wants_device_events(self) -> bool {
        self.global_accesses
            || self.shared_accesses
            || self.barriers
            || self.block_boundaries
            || self.instructions
    }

    /// Whether events of `class` should be delivered to a tool with this
    /// interest set — the single source of truth behind the dispatch table.
    pub fn wants_class(self, class: EventClass) -> bool {
        match class {
            EventClass::DeviceAccess => self.global_accesses || self.shared_accesses,
            EventClass::DeviceControl => {
                // Kernel trace summaries ride along for access-interested
                // tools (global or shared) even when they never asked for
                // barriers.
                self.barriers
                    || self.block_boundaries
                    || self.instructions
                    || self.global_accesses
                    || self.shared_accesses
            }
            EventClass::Framework | EventClass::Annotation => self.framework_events,
            EventClass::HostApi | EventClass::Kernel | EventClass::Memory | EventClass::Sync => {
                self.host_events
            }
        }
    }
}

/// The analysis-tool template. All handlers default to no-ops.
///
/// `Send + Sync` because tool instances live inside per-device hub
/// shards: `Send` moves them across lane threads, and `Sync` lets the
/// session-end merge stage fold several shards' instances from a small
/// thread pool (tools only ever receive `&mut self` event delivery
/// under their shard's lock, so the bounds cost implementations
/// nothing — plain data structs satisfy both automatically).
pub trait Tool: Send + Sync {
    /// Unique tool name (used for selection, like the paper's
    /// `accelprof -t <tool>` flag).
    fn name(&self) -> &str;

    /// Which event classes to deliver (and therefore instrument).
    fn interest(&self) -> Interest {
        Interest::coarse()
    }

    /// Generic event delivery; the default demultiplexes to the typed
    /// handlers below, so tools can override either granularity.
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::GlobalAccess {
                launch,
                kernel,
                batch,
            } => self.on_global_access(*launch, kernel, batch),
            Event::SharedAccess {
                launch,
                kernel,
                batch,
            } => self.on_shared_access(*launch, kernel, batch),
            Event::KernelTrace {
                launch,
                kernel,
                summary,
            } => self.on_kernel_trace(*launch, kernel, summary),
            _ => {}
        }
    }

    /// One batch of global-memory access records.
    fn on_global_access(&mut self, launch: LaunchId, kernel: &Symbol, batch: &AccessBatch) {
        let _ = (launch, kernel, batch);
    }

    /// One batch of shared-memory access records.
    fn on_shared_access(&mut self, launch: LaunchId, kernel: &Symbol, batch: &AccessBatch) {
        let _ = (launch, kernel, batch);
    }

    /// End-of-kernel trace summary.
    fn on_kernel_trace(&mut self, launch: LaunchId, kernel: &Symbol, summary: &KernelTraceSummary) {
        let _ = (launch, kernel, summary);
    }

    /// Produces the tool's report.
    fn report(&self) -> ToolReport {
        ToolReport::new(self.name())
    }

    /// Clears accumulated state between runs.
    fn reset(&mut self) {}

    /// Creates a fresh, state-empty instance of this tool for another
    /// device shard of the sharded hub.
    ///
    /// Returning `None` (the default) opts the session out of per-device
    /// sharding: the builder falls back to a single shard that every
    /// device shares, which is always correct but serializes concurrent
    /// emission. Tools that want multi-device scalability return a
    /// default-constructed instance and implement [`Tool::merge`].
    fn fork(&self) -> Option<Box<dyn Tool>> {
        None
    }

    /// Folds another instance's accumulated state into `self` — the merge
    /// stage of the sharded hub, invoked at report time in ascending
    /// device-id order (each shard's state is internally launch-ordered,
    /// so the merge is deterministic: launch order within a device, then
    /// device id across devices).
    ///
    /// `other` is always an instance of the same concrete type (produced
    /// by [`Tool::fork`]); implementations downcast it via
    /// [`Tool::as_any`]. The default is a no-op, which is only sound for
    /// tools that never fork.
    fn merge(&mut self, other: &dyn Tool) {
        let _ = other;
    }

    /// Downcasting support (used by
    /// [`crate::PastaSession::with_tool_mut`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An ordered collection of tools sharing one event stream.
///
/// Dispatch is driven by a per-[`EventClass`] table precomputed from each
/// tool's [`Tool::interest`] at registration (and rebuilt on
/// [`ToolCollection::reset`]): delivering an event touches only the tools
/// subscribed to its class, and [`ToolCollection::wants_class`] answers
/// "does anyone care?" in O(1) so the sink can drop uninteresting device
/// events before they are ever constructed. Interests are therefore
/// sampled at registration/reset, not per event.
/// Panic containment: a tool whose callback panics is caught at the
/// dispatch boundary, removed from every dispatch row (the unquarantined
/// hot path pays nothing afterwards) and reported as a
/// [`ToolQuarantine`]; sibling tools and the shard's recorder keep
/// running. The non-panic dispatch path is unchanged — `catch_unwind` is
/// free until a panic actually lands, and no allocation happens unless
/// one does.
#[derive(Default)]
pub struct ToolCollection {
    tools: Vec<Box<dyn Tool>>,
    /// `class_tools[class.index()]` = indices of tools wanting that class.
    class_tools: [Vec<usize>; EventClass::ALL.len()],
    /// Tools disarmed after a panicking callback: registration index plus
    /// the first panic message. Cleared (re-armed) by
    /// [`ToolCollection::reset`].
    quarantined: Vec<(usize, ToolQuarantine)>,
}

impl std::fmt::Debug for ToolCollection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolCollection")
            .field(
                "tools",
                &self
                    .tools
                    .iter()
                    .map(|t| t.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ToolCollection {
    /// An empty collection.
    pub fn new() -> Self {
        ToolCollection::default()
    }

    /// Registers a tool and folds its interest into the dispatch table.
    pub fn register(&mut self, tool: Box<dyn Tool>) {
        self.tools.push(tool);
        self.rebuild_dispatch();
    }

    /// Recomputes the per-class dispatch table from current interests.
    /// Quarantined tools are left out of every row, so the hot path never
    /// revisits them.
    fn rebuild_dispatch(&mut self) {
        for class in EventClass::ALL {
            let row = &mut self.class_tools[class.index()];
            row.clear();
            let quarantined = &self.quarantined;
            row.extend(
                self.tools
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| {
                        quarantined.iter().all(|&(q, _)| q != *i) && t.interest().wants_class(class)
                    })
                    .map(|(i, _)| i),
            );
        }
    }

    /// True when at least one registered tool wants events of `class`.
    pub fn wants_class(&self, class: EventClass) -> bool {
        !self.class_tools[class.index()].is_empty()
    }

    /// Number of registered tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// True when no tools are registered.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Union of all *armed* tools' interests — a quarantined tool no
    /// longer contributes, so instrumentation it alone requested can be
    /// withdrawn at the next probe reconfiguration.
    pub fn interest(&self) -> Interest {
        self.tools
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.is_quarantined(*i))
            .fold(Interest::default(), |acc, (_, t)| acc.union(t.interest()))
    }

    /// Delivers an event to every tool whose interest covers its class,
    /// via the precomputed dispatch table (uninterested tools are never
    /// touched).
    ///
    /// A panicking callback quarantines its tool (see the type docs);
    /// siblings later in the row still receive this event.
    pub fn dispatch(&mut self, event: &Event) {
        // One unwind guard covers the whole row (not one per tool — the
        // guard cost is per catch_unwind, and this is the hot path);
        // `cursor` names the tool that was live when a panic unwound, so
        // the cold path can attribute it and resume with the tools after
        // it — siblings never miss an event. Nothing here allocates.
        let cursor = std::cell::Cell::new(0);
        let row = &self.class_tools[event.class().index()];
        let tools = &mut self.tools;
        let result = catch_unwind(AssertUnwindSafe(|| {
            for (k, &i) in row.iter().enumerate() {
                cursor.set(k);
                tools[i].on_event(event);
            }
        }));
        if let Err(payload) = result {
            self.dispatch_unwound(event, cursor.get(), payload);
        }
    }

    /// Continuation of [`ToolCollection::dispatch`] after a callback
    /// panicked at row position `k`: quarantines the panicker, finishes
    /// the row (per-tool guards — cheap here, this runs at most once per
    /// quarantined tool per run), and rebuilds the dispatch table.
    #[cold]
    #[inline(never)]
    fn dispatch_unwound(
        &mut self,
        event: &Event,
        k: usize,
        payload: Box<dyn std::any::Any + Send>,
    ) {
        let row = &self.class_tools[event.class().index()];
        let mut panicked = vec![(row[k], panic_message(payload.as_ref()))];
        for &i in &row[k + 1..] {
            let tool = &mut self.tools[i];
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| tool.on_event(event))) {
                panicked.push((i, panic_message(payload.as_ref())));
            }
        }
        self.quarantine_panicked(panicked);
    }

    /// Delivers a slice of same-class events, resolving the dispatch row
    /// once for the whole slice instead of per event — the drain half of
    /// the sink's per-class spill buffers. Events stay in slice (emission)
    /// order for every receiving tool.
    ///
    /// A tool that panics mid-batch is skipped for the remainder of the
    /// batch and quarantined afterwards; siblings see every event.
    pub fn dispatch_class_batch(&mut self, class: EventClass, events: &[Event]) {
        let row = &self.class_tools[class.index()];
        if row.is_empty() {
            return;
        }
        // Tool-major order: each tool still sees the batch in stream
        // order — the only order a tool can observe, since tools never
        // see each other — and the unwind guard costs one landing pad
        // per tool per batch instead of one per event. A panicking tool
        // forfeits the rest of its batch; it is quarantined anyway.
        let mut panicked: Vec<(usize, String)> = Vec::new();
        for &i in row {
            let tool = &mut self.tools[i];
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                for event in events {
                    debug_assert_eq!(event.class(), class);
                    tool.on_event(event);
                }
            })) {
                panicked.push((i, panic_message(payload.as_ref())));
            }
        }
        if !panicked.is_empty() {
            self.quarantine_panicked(panicked);
        }
    }

    /// Disarms each listed tool and records its first panic message. The
    /// dispatch table is rebuilt once, so subsequent events pay nothing
    /// for the quarantined tools.
    fn quarantine_panicked(&mut self, panicked: Vec<(usize, String)>) {
        for (i, message) in panicked {
            self.quarantine(i, message);
        }
        self.rebuild_dispatch();
    }

    /// Records tool `i` as quarantined (first panic message wins). Does
    /// not rebuild the dispatch table — callers batch that.
    fn quarantine(&mut self, i: usize, message: String) {
        if self.quarantined.iter().any(|&(q, _)| q == i) {
            return;
        }
        let tool = self.tools[i].name().to_owned();
        self.quarantined.push((i, ToolQuarantine { tool, message }));
    }

    /// True when the tool at registration index `i` is quarantined.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.quarantined.iter().any(|&(q, _)| q == i)
    }

    /// The quarantine record for the tool at registration index `i`, if
    /// it is quarantined.
    pub fn quarantine_of(&self, i: usize) -> Option<&ToolQuarantine> {
        self.quarantined
            .iter()
            .find(|&&(q, _)| q == i)
            .map(|(_, q)| q)
    }

    /// All quarantine records, in detection order.
    pub fn quarantines(&self) -> impl Iterator<Item = &ToolQuarantine> {
        self.quarantined.iter().map(|(_, q)| q)
    }

    /// Reports from every tool, in registration order. A quarantined tool
    /// — or one whose `report()` itself panics — contributes a stub
    /// report naming the failure instead of poisoning the whole
    /// collection.
    pub fn reports(&self) -> Vec<ToolReport> {
        self.tools
            .iter()
            .enumerate()
            .map(
                |(i, t)| match catch_unwind(AssertUnwindSafe(|| t.report())) {
                    Ok(report) => report,
                    Err(payload) => {
                        let why = self
                            .quarantine_of(i)
                            .map(|q| q.message.clone())
                            .unwrap_or_else(|| panic_message(payload.as_ref()));
                        ToolReport::new(t.name()).body(format!("<report unavailable: {why}>"))
                    }
                },
            )
            .collect()
    }

    /// The tool at registration index `i`.
    pub fn tool_at(&self, i: usize) -> Option<&dyn Tool> {
        self.tools.get(i).map(|t| &**t)
    }

    /// A fresh collection holding one [`Tool::fork`] of every registered
    /// tool (same registration order, same dispatch table). `None` when
    /// any tool declines to fork — the caller then falls back to a single
    /// shared shard.
    pub fn fork_all(&self) -> Option<ToolCollection> {
        let mut forked = ToolCollection::new();
        for tool in &self.tools {
            forked.tools.push(tool.fork()?);
        }
        forked.rebuild_dispatch();
        Some(forked)
    }

    /// Resets every tool and rebuilds the dispatch table (the one point,
    /// besides registration, where changed interests are picked up).
    ///
    /// Quarantined tools are re-armed: a clean `reset()` clears their
    /// quarantine record. A tool whose `reset()` itself panics goes (or
    /// stays) quarantined instead of unwinding into the session.
    pub fn reset(&mut self) {
        let mut failed: Vec<(usize, String)> = Vec::new();
        for (i, t) in self.tools.iter_mut().enumerate() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| t.reset())) {
                failed.push((i, panic_message(payload.as_ref())));
            }
        }
        self.quarantined.clear();
        for (i, message) in failed {
            self.quarantine(i, message);
        }
        self.rebuild_dispatch();
    }

    /// Runs `f` against the named tool downcast to `T`.
    pub fn with_tool_mut<T: Tool + 'static, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        self.tools
            .iter_mut()
            .find(|t| t.name() == name)
            .and_then(|t| t.as_any_mut().downcast_mut::<T>())
            .map(f)
    }
}

/// The smallest useful tool: counts kernel launches. Doubles as the
/// doc-example tool and a test fixture.
#[derive(Debug, Default)]
pub struct LaunchCounter {
    /// Kernel launches observed.
    pub launches: u64,
}

impl Tool for LaunchCounter {
    fn name(&self) -> &str {
        "launch-counter"
    }

    fn on_event(&mut self, event: &Event) {
        if matches!(event, Event::KernelLaunchEnd { .. }) {
            self.launches += 1;
        }
    }

    fn report(&self) -> ToolReport {
        ToolReport::new(self.name()).metric("launches", self.launches as f64)
    }

    fn reset(&mut self) {
        self.launches = 0;
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::<LaunchCounter>::default())
    }

    fn merge(&mut self, other: &dyn Tool) {
        if let Some(other) = other.as_any().downcast_ref::<LaunchCounter>() {
            self.launches += other.launches;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, SimTime};

    fn launch_end() -> Event {
        Event::KernelLaunchEnd {
            launch: LaunchId(0),
            device: DeviceId(0),
            name: "k".into(),
            start: SimTime(0),
            end: SimTime(10),
        }
    }

    #[test]
    fn interest_union_and_probe_config() {
        let a = Interest {
            global_accesses: true,
            ..Interest::default()
        };
        let b = Interest {
            barriers: true,
            host_events: true,
            ..Interest::default()
        };
        let u = a.union(b);
        assert!(u.global_accesses && u.barriers && u.host_events);
        assert!(u.wants_device_events());
        let pc = u.probe_config();
        assert!(pc.global_accesses && pc.barriers);
        assert!(!pc.shared_accesses);
        assert!(!Interest::coarse().wants_device_events());
    }

    #[test]
    fn interest_union_is_commutative_and_idempotent() {
        let a = Interest {
            shared_accesses: true,
            instructions: true,
            ..Interest::default()
        };
        let b = Interest {
            block_boundaries: true,
            framework_events: true,
            ..Interest::default()
        };
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(a), a);
        // The empty interest is the identity element.
        assert_eq!(a.union(Interest::default()), a);
        // `all` absorbs everything.
        assert_eq!(a.union(Interest::all()), Interest::all());
    }

    #[test]
    fn probe_config_covers_exactly_the_device_access_classes() {
        // Every probe-visible class maps through; the host/framework/
        // instruction classes never enable device probes.
        let pc = Interest::all().probe_config();
        assert!(pc.global_accesses && pc.shared_accesses && pc.barriers && pc.block_boundaries);
        let none = Interest {
            instructions: true,
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
        .probe_config();
        assert!(
            !none.global_accesses
                && !none.shared_accesses
                && !none.barriers
                && !none.block_boundaries
        );
        assert_eq!(Interest::default().probe_config(), ProbeConfig::disabled());
    }

    #[test]
    fn collection_dispatch_and_downcast() {
        let mut c = ToolCollection::new();
        c.register(Box::<LaunchCounter>::default());
        assert_eq!(c.len(), 1);
        c.dispatch(&launch_end());
        c.dispatch(&launch_end());
        let n = c
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 2);
        assert!(c
            .with_tool_mut("missing", |t: &mut LaunchCounter| t.launches)
            .is_none());
        let reports = c.reports();
        assert_eq!(reports[0].get("launches"), Some(2.0));
        c.reset();
        let n = c
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn dispatch_respects_interest() {
        #[derive(Default)]
        struct FrameworkOnly {
            framework: u64,
            other: u64,
        }
        impl Tool for FrameworkOnly {
            fn name(&self) -> &str {
                "fw-only"
            }
            fn interest(&self) -> Interest {
                Interest {
                    framework_events: true,
                    ..Interest::default()
                }
            }
            fn on_event(&mut self, event: &Event) {
                match event.class() {
                    crate::event::EventClass::Framework => self.framework += 1,
                    _ => self.other += 1,
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut c = ToolCollection::new();
        c.register(Box::<FrameworkOnly>::default());
        c.dispatch(&launch_end()); // Kernel class — filtered out
        c.dispatch(&Event::PassBoundary {
            pass: dl_framework::callbacks::Pass::Forward,
            device: DeviceId(0),
        });
        let (fw, other) = c
            .with_tool_mut("fw-only", |t: &mut FrameworkOnly| (t.framework, t.other))
            .unwrap();
        assert_eq!(fw, 1);
        assert_eq!(other, 0, "uninterested classes never delivered");
    }

    #[test]
    fn coarse_tool_never_receives_device_access_events() {
        // ISSUE-2 gating contract: `Interest::coarse()` subscribes to host
        // and framework classes only, so DeviceAccess events must not reach
        // the tool even when another registered tool pulls them in.
        #[derive(Default)]
        struct CoarseSpy {
            device_access: u64,
            delivered: u64,
        }
        impl Tool for CoarseSpy {
            fn name(&self) -> &str {
                "coarse-spy"
            }
            fn interest(&self) -> Interest {
                Interest::coarse()
            }
            fn on_event(&mut self, event: &Event) {
                self.delivered += 1;
                if event.class() == EventClass::DeviceAccess {
                    self.device_access += 1;
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        #[derive(Default)]
        struct Hungry {
            device_access: u64,
        }
        impl Tool for Hungry {
            fn name(&self) -> &str {
                "hungry"
            }
            fn interest(&self) -> Interest {
                Interest::all()
            }
            fn on_event(&mut self, event: &Event) {
                if event.class() == EventClass::DeviceAccess {
                    self.device_access += 1;
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut c = ToolCollection::new();
        c.register(Box::<CoarseSpy>::default());
        c.register(Box::<Hungry>::default());
        assert!(c.wants_class(EventClass::DeviceAccess));
        let access = Event::GlobalAccess {
            launch: LaunchId(0),
            kernel: "k".into(),
            batch: AccessBatch {
                launch: LaunchId(0),
                spec_index: 0,
                base: 0,
                len: 128,
                records: 1,
                bytes: 128,
                elem_size: 4,
                kind: accel_sim::AccessKind::Load,
                space: accel_sim::MemSpace::Global,
                pattern: accel_sim::AccessPattern::Sequential,
            },
        };
        c.dispatch(&access);
        c.dispatch(&launch_end());
        let (spy_da, spy_total) = c
            .with_tool_mut("coarse-spy", |t: &mut CoarseSpy| {
                (t.device_access, t.delivered)
            })
            .unwrap();
        assert_eq!(spy_da, 0, "coarse tool must never see DeviceAccess");
        assert_eq!(spy_total, 1, "it still gets the Kernel-class event");
        let hungry_da = c
            .with_tool_mut("hungry", |t: &mut Hungry| t.device_access)
            .unwrap();
        assert_eq!(hungry_da, 1, "the interested tool still gets it");
    }

    #[test]
    fn shared_access_interest_gets_kernel_trace_ride_along() {
        // KernelTrace (DeviceControl class) carries the shared_records
        // totals a shared-accesses tool aggregates — it must ride along
        // exactly as it does for global-accesses tools.
        let shared_only = Interest {
            shared_accesses: true,
            ..Interest::default()
        };
        assert!(shared_only.wants_class(EventClass::DeviceAccess));
        assert!(shared_only.wants_class(EventClass::DeviceControl));
        assert!(!shared_only.wants_class(EventClass::HostApi));
    }

    /// Panics on the `n`th delivered event (0-based); counts deliveries.
    struct PanicOnNth {
        n: u64,
        seen: u64,
    }
    impl Tool for PanicOnNth {
        fn name(&self) -> &str {
            "panic-on-nth"
        }
        fn on_event(&mut self, _event: &Event) {
            if self.seen == self.n {
                panic!("fault-injection: tool blew up");
            }
            self.seen += 1;
        }
        fn reset(&mut self) {
            self.seen = 0;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn panicking_tool_is_quarantined_and_siblings_keep_running() {
        let mut c = ToolCollection::new();
        c.register(Box::<LaunchCounter>::default());
        c.register(Box::new(PanicOnNth { n: 1, seen: 0 }));
        c.dispatch(&launch_end()); // both fine
        c.dispatch(&launch_end()); // panic-on-nth panics here
        assert!(c.is_quarantined(1));
        assert!(!c.is_quarantined(0));
        let q = c.quarantine_of(1).expect("quarantine recorded");
        assert_eq!(q.tool, "panic-on-nth");
        assert!(q.message.contains("fault-injection"), "{}", q.message);
        // Further events reach the survivor and skip the quarantined tool
        // entirely (it is out of every dispatch row).
        c.dispatch(&launch_end());
        let n = c
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 3, "sibling saw every event");
        let seen = c
            .with_tool_mut("panic-on-nth", |t: &mut PanicOnNth| t.seen)
            .unwrap();
        assert_eq!(seen, 1, "quarantined tool received nothing further");
        // Reports still come back for every tool, in order.
        let reports = c.reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].get("launches"), Some(3.0));
    }

    #[test]
    fn batch_dispatch_skips_panicked_tool_for_rest_of_batch() {
        let mut c = ToolCollection::new();
        c.register(Box::new(PanicOnNth { n: 0, seen: 0 }));
        c.register(Box::<LaunchCounter>::default());
        let events = vec![launch_end(), launch_end(), launch_end()];
        c.dispatch_class_batch(EventClass::Kernel, &events);
        assert!(c.is_quarantined(0));
        let n = c
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 3, "sibling after the panicker saw the whole batch");
    }

    #[test]
    fn quarantined_tool_stops_contributing_interest() {
        struct HungryPanicker;
        impl Tool for HungryPanicker {
            fn name(&self) -> &str {
                "hungry-panicker"
            }
            fn interest(&self) -> Interest {
                Interest::all()
            }
            fn on_event(&mut self, _event: &Event) {
                panic!("fault-injection");
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut c = ToolCollection::new();
        c.register(Box::new(HungryPanicker));
        assert!(c.interest().global_accesses);
        c.dispatch(&launch_end());
        assert!(c.is_quarantined(0));
        assert_eq!(
            c.interest(),
            Interest::default(),
            "quarantined tool's interest withdrawn"
        );
        assert!(!c.wants_class(EventClass::Kernel), "out of every row");
    }

    #[test]
    fn reset_rearms_quarantined_tools() {
        let mut c = ToolCollection::new();
        c.register(Box::new(PanicOnNth { n: 0, seen: 0 }));
        c.dispatch(&launch_end());
        assert!(c.is_quarantined(0));
        assert_eq!(c.quarantines().count(), 1);
        c.reset();
        assert!(!c.is_quarantined(0), "clean reset re-arms the tool");
        assert!(c.wants_class(EventClass::Kernel), "back in the table");
    }

    #[test]
    fn panicking_report_yields_stub_instead_of_unwinding() {
        struct BadReport;
        impl Tool for BadReport {
            fn name(&self) -> &str {
                "bad-report"
            }
            fn report(&self) -> ToolReport {
                panic!("fault-injection: report exploded");
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut c = ToolCollection::new();
        c.register(Box::new(BadReport));
        let reports = c.reports();
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0].text.contains("report unavailable"),
            "{}",
            reports[0].text
        );
        c.reset(); // BadReport's default reset is fine — nothing quarantined
        assert!(!c.is_quarantined(0));
    }

    #[test]
    fn dispatch_table_tracks_registration_and_reset() {
        let mut c = ToolCollection::new();
        assert!(!c.wants_class(EventClass::Kernel));
        c.register(Box::<LaunchCounter>::default());
        assert!(c.wants_class(EventClass::Kernel));
        assert!(c.wants_class(EventClass::HostApi));
        assert!(!c.wants_class(EventClass::DeviceAccess));
        assert!(!c.wants_class(EventClass::DeviceControl));
        c.reset();
        assert!(
            c.wants_class(EventClass::Kernel),
            "reset rebuilds, not clears, the table"
        );
    }
}
