//! The unified PASTA event model.
//!
//! One [`Event`] enum covers every event the paper's Table II lists, from
//! coarse host-called API events through fine-grained device-side
//! operations to high-level DL-framework events. Vendor-specific details
//! are gone by the time an `Event` exists — that is [`crate::normalize`]'s
//! job.

use accel_sim::{
    AccessBatch, CopyDirection, DeviceId, Dim3, KernelTraceSummary, LaunchId, SimTime, StreamId,
    Symbol,
};
use dl_framework::callbacks::Pass;
use dl_framework::pycall::PyFrame;
use dl_framework::tensor::TensorId;
use serde::{Deserialize, Serialize};

/// Broad event classes, used for interest declarations and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// Driver/runtime API enter-exit events.
    HostApi,
    /// Kernel launch lifecycle.
    Kernel,
    /// Host-visible memory operations (alloc/free/copy/set/batch).
    Memory,
    /// Synchronization.
    Sync,
    /// Fine-grained device-side accesses (global/shared/remote).
    DeviceAccess,
    /// Fine-grained device-side control (barriers, blocks, calls, pipes).
    DeviceControl,
    /// DL-framework events (ops, tensors, passes).
    Framework,
    /// User annotations (regions, layers).
    Annotation,
}

impl EventClass {
    /// Every class, in [`EventClass::index`] order — the rows of the
    /// per-class dispatch table.
    pub const ALL: [EventClass; 8] = [
        EventClass::HostApi,
        EventClass::Kernel,
        EventClass::Memory,
        EventClass::Sync,
        EventClass::DeviceAccess,
        EventClass::DeviceControl,
        EventClass::Framework,
        EventClass::Annotation,
    ];

    /// Dense index of this class into [`EventClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            EventClass::HostApi => 0,
            EventClass::Kernel => 1,
            EventClass::Memory => 2,
            EventClass::Sync => 3,
            EventClass::DeviceAccess => 4,
            EventClass::DeviceControl => 5,
            EventClass::Framework => 6,
            EventClass::Annotation => 7,
        }
    }
}

/// A normalized runtime event (paper Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    // --- Coarse-grained host-called API events ---------------------------
    /// Any driver-level API function ("All Driver Functions").
    DriverApi {
        /// Normalized API name (vendor prefix stripped), interned.
        name: Symbol,
        /// Device current when the API was entered (the sharded hub's
        /// routing key).
        device: DeviceId,
        /// Host time.
        at: SimTime,
    },
    /// Any runtime-level API function ("All Runtime Functions").
    RuntimeApi {
        /// Normalized API name, interned.
        name: Symbol,
        /// Device current when the API was entered.
        device: DeviceId,
        /// Host time.
        at: SimTime,
    },
    /// Synchronization call completed.
    Sync {
        /// Device synchronized.
        device: DeviceId,
        /// Host time after the wait.
        at: SimTime,
    },
    /// A kernel is about to execute (from the device-trace path, so it
    /// precedes the fine-grained events of that launch).
    KernelLaunchBegin {
        /// Launch ("grid") id.
        launch: LaunchId,
        /// Device.
        device: DeviceId,
        /// Stream.
        stream: StreamId,
        /// Kernel symbol, interned once per launch.
        name: Symbol,
        /// Grid dimensions (normalized from AMD workgroup counts).
        grid: Dim3,
        /// Block dimensions.
        block: Dim3,
    },
    /// A kernel finished; carries timing.
    KernelLaunchEnd {
        /// Launch id.
        launch: LaunchId,
        /// Device.
        device: DeviceId,
        /// Kernel symbol, interned once per launch.
        name: Symbol,
        /// Device-time start.
        start: SimTime,
        /// Device-time end.
        end: SimTime,
    },
    /// Memory copy.
    MemCopy {
        /// Device.
        device: DeviceId,
        /// Direction.
        direction: CopyDirection,
        /// Bytes moved.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// Memory set.
    MemSet {
        /// Device.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Bytes.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// Device or managed memory allocated ("Resource Operations").
    /// Sizes are always positive after normalization.
    ResourceAlloc {
        /// Device.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Bytes (positive).
        bytes: u64,
        /// Managed (UVM) allocation.
        managed: bool,
        /// Host time.
        at: SimTime,
    },
    /// Memory released. Bytes are positive regardless of the vendor's
    /// sign convention (the paper's §III-G normalization example).
    ResourceFree {
        /// Device.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Bytes (positive).
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// Batch memory operation (prefetch/advise).
    BatchMemOp {
        /// Device.
        device: DeviceId,
        /// Operation label, normalized (`"mem_prefetch"`, `"mem_advise"`).
        op: Symbol,
        /// Base address.
        addr: u64,
        /// Bytes covered.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// Managed-memory fault/migration activity one launch triggered
    /// (normalized from NVIDIA `UvmFault` and AMD `PageMigrate`
    /// callbacks). `device` is the *faulting* device — the device the
    /// kernel executed on — which is also the sharded hub's routing key,
    /// so a lane's faults always land in that lane's shard.
    UvmFault {
        /// Launch whose accesses faulted.
        launch: LaunchId,
        /// The faulting device.
        device: DeviceId,
        /// Fault groups serviced.
        groups: u64,
        /// Bytes migrated host→device.
        migrated_bytes: u64,
        /// Bytes evicted device→host to make room.
        evicted_bytes: u64,
        /// Device stall charged to the launch, ns.
        stall_ns: u64,
        /// Host time.
        at: SimTime,
    },
    /// A peer-to-peer coherence operation on a *shared* managed range
    /// (normalized from NVIDIA `PeerMigrate` and AMD `PeerCopy`
    /// callbacks): either a read duplication — data moved `src → dst`
    /// over the peer link — or a write invalidation — `src` wrote,
    /// `dst`'s duplicate was dropped. Routed by **destination** device:
    /// `dst` is whose residency changed, so its shard owns the event.
    UvmPeerMigrate {
        /// Launch whose accesses triggered the operation.
        launch: LaunchId,
        /// Device the data (or the invalidating write) came from.
        src: DeviceId,
        /// Device whose residency changed — the routing key.
        dst: DeviceId,
        /// Pages read-duplicated onto `dst`.
        duplicated_pages: u64,
        /// `dst` duplicate pages invalidated by `src`'s write.
        invalidated_pages: u64,
        /// Bytes moved over the peer link (duplications only).
        bytes: u64,
        /// Device stall charged to the launch, ns.
        stall_ns: u64,
        /// Host time.
        at: SimTime,
    },

    // --- Fine-grained device-side operations ------------------------------
    /// Thread-block entries+exits for a launch ("Thread Block Entry/Exit").
    BlockBoundary {
        /// Launch id.
        launch: LaunchId,
        /// Number of blocks.
        count: u64,
    },
    /// A batch of global-memory access records.
    GlobalAccess {
        /// Launch id.
        launch: LaunchId,
        /// Kernel symbol, interned once per launch.
        kernel: Symbol,
        /// The access batch (addresses, counts, pattern).
        batch: AccessBatch,
    },
    /// A batch of shared-memory access records (covers "Shared Memory
    /// Access" and, via the batch's space, "Remote Shared Memory Access").
    SharedAccess {
        /// Launch id.
        launch: LaunchId,
        /// Kernel symbol, interned once per launch.
        kernel: Symbol,
        /// The access batch.
        batch: AccessBatch,
    },
    /// Barrier instruction executions ("Barrier Instruction" /
    /// "Cluster Barrier").
    Barrier {
        /// Launch id.
        launch: LaunchId,
        /// Executions.
        count: u64,
        /// True for cluster-wide barriers.
        cluster: bool,
    },
    /// Device function call/return pairs.
    DeviceFuncCall {
        /// Launch id.
        launch: LaunchId,
        /// Call+return pairs.
        count: u64,
    },
    /// Device-side `malloc`.
    DeviceMalloc {
        /// Launch id.
        launch: LaunchId,
        /// Bytes requested.
        bytes: u64,
    },
    /// Device-side `free`.
    DeviceFree {
        /// Launch id.
        launch: LaunchId,
        /// Bytes released (positive).
        bytes: u64,
    },
    /// Global-to-shared bulk copies ("Global-To-Shared Copy").
    GlobalToSharedCopy {
        /// Launch id.
        launch: LaunchId,
        /// Bytes staged.
        bytes: u64,
    },
    /// Async-pipeline commit/wait pairs ("Pipeline Commit"/"Pipeline Wait").
    PipelineOp {
        /// Launch id.
        launch: LaunchId,
        /// Commit+wait pairs.
        count: u64,
    },
    /// Dynamic instruction count ("Any Specific Instruction", full-coverage
    /// backends only).
    Instructions {
        /// Launch id.
        launch: LaunchId,
        /// Dynamic instructions.
        count: u64,
    },
    /// End-of-kernel trace summary.
    KernelTrace {
        /// Launch id.
        launch: LaunchId,
        /// Kernel symbol, interned once per launch.
        kernel: Symbol,
        /// Aggregated counters.
        summary: KernelTraceSummary,
    },

    // --- High-level DL framework events -----------------------------------
    /// Operator began ("Operator Start").
    OpStart {
        /// Operator sequence number.
        seq: u64,
        /// Operator name, interned.
        name: Symbol,
        /// Device.
        device: DeviceId,
        /// Python stack at the call site.
        py_stack: Vec<PyFrame>,
    },
    /// Operator finished ("Operator End").
    OpEnd {
        /// Operator sequence number.
        seq: u64,
        /// Operator name, interned.
        name: Symbol,
        /// Device.
        device: DeviceId,
    },
    /// Tensor allocated ("Tensor Allocation").
    TensorAlloc {
        /// Tensor id.
        tensor: TensorId,
        /// Address within a pool segment.
        addr: u64,
        /// Bytes (positive).
        bytes: u64,
        /// Allocator live-bytes after the event.
        allocated_total: u64,
        /// Allocator reserved-bytes after the event.
        reserved_total: u64,
        /// Device.
        device: DeviceId,
    },
    /// Tensor released ("Tensor Reclamation").
    TensorFree {
        /// Tensor id.
        tensor: TensorId,
        /// Address.
        addr: u64,
        /// Bytes (positive).
        bytes: u64,
        /// Allocator live-bytes after the event.
        allocated_total: u64,
        /// Allocator reserved-bytes after the event.
        reserved_total: u64,
        /// Device.
        device: DeviceId,
    },
    /// Layer boundary ("Layer Boundary*", annotation-driven).
    LayerBoundary {
        /// Layer name, interned.
        name: Symbol,
        /// Ordinal.
        index: usize,
        /// Device.
        device: DeviceId,
    },
    /// Forward/backward/optimizer boundary ("Forward/Backward Boundary*").
    PassBoundary {
        /// Pass starting here.
        pass: Pass,
        /// Device.
        device: DeviceId,
    },
    /// `pasta.start()` region annotation ("Customized Code Region*").
    RegionStart {
        /// Label, interned.
        label: Symbol,
        /// Device.
        device: DeviceId,
    },
    /// `pasta.stop()` region annotation.
    RegionEnd {
        /// Label, interned.
        label: Symbol,
        /// Device.
        device: DeviceId,
    },
}

impl Event {
    /// The device this event is attributed to — the sharded hub's routing
    /// key. Launch-scoped fine-grained events return `None`: they reach
    /// the hub through a [`crate::hub::HubSink`] already bound to its
    /// device's shard, so they never need routing by content.
    pub fn device(&self) -> Option<DeviceId> {
        use Event::*;
        match self {
            DriverApi { device, .. }
            | RuntimeApi { device, .. }
            | Sync { device, .. }
            | KernelLaunchBegin { device, .. }
            | KernelLaunchEnd { device, .. }
            | MemCopy { device, .. }
            | MemSet { device, .. }
            | ResourceAlloc { device, .. }
            | ResourceFree { device, .. }
            | BatchMemOp { device, .. }
            | UvmFault { device, .. }
            | UvmPeerMigrate { dst: device, .. }
            | OpStart { device, .. }
            | OpEnd { device, .. }
            | TensorAlloc { device, .. }
            | TensorFree { device, .. }
            | LayerBoundary { device, .. }
            | PassBoundary { device, .. }
            | RegionStart { device, .. }
            | RegionEnd { device, .. } => Some(*device),
            BlockBoundary { .. }
            | GlobalAccess { .. }
            | SharedAccess { .. }
            | Barrier { .. }
            | DeviceFuncCall { .. }
            | DeviceMalloc { .. }
            | DeviceFree { .. }
            | GlobalToSharedCopy { .. }
            | PipelineOp { .. }
            | Instructions { .. }
            | KernelTrace { .. } => None,
        }
    }

    /// The broad class of this event.
    pub fn class(&self) -> EventClass {
        use Event::*;
        match self {
            DriverApi { .. } | RuntimeApi { .. } => EventClass::HostApi,
            KernelLaunchBegin { .. } | KernelLaunchEnd { .. } => EventClass::Kernel,
            MemCopy { .. }
            | MemSet { .. }
            | ResourceAlloc { .. }
            | ResourceFree { .. }
            | BatchMemOp { .. }
            | UvmFault { .. }
            | UvmPeerMigrate { .. } => EventClass::Memory,
            Sync { .. } => EventClass::Sync,
            GlobalAccess { .. } | SharedAccess { .. } | GlobalToSharedCopy { .. } => {
                EventClass::DeviceAccess
            }
            BlockBoundary { .. }
            | Barrier { .. }
            | DeviceFuncCall { .. }
            | DeviceMalloc { .. }
            | DeviceFree { .. }
            | PipelineOp { .. }
            | Instructions { .. }
            | KernelTrace { .. } => EventClass::DeviceControl,
            OpStart { .. }
            | OpEnd { .. }
            | TensorAlloc { .. }
            | TensorFree { .. }
            | PassBoundary { .. } => EventClass::Framework,
            LayerBoundary { .. } | RegionStart { .. } | RegionEnd { .. } => EventClass::Annotation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_event_coverage() {
        // Every Table II row maps onto at least one Event variant; this
        // test is the executable version of that claim.
        let rows: [(&str, EventClass); 22] = [
            ("All Driver Functions", EventClass::HostApi),
            ("All Runtime Functions", EventClass::HostApi),
            ("Synchronization", EventClass::Sync),
            ("Kernel Launch", EventClass::Kernel),
            ("Memory Copy", EventClass::Memory),
            ("Memory Set", EventClass::Memory),
            ("Resource Operations", EventClass::Memory),
            ("Batch Memory Operations", EventClass::Memory),
            ("Thread Block Entry/Exit", EventClass::DeviceControl),
            ("Global Memory Access", EventClass::DeviceAccess),
            ("Shared Memory Access", EventClass::DeviceAccess),
            ("Barrier Instruction", EventClass::DeviceControl),
            ("Device Function Call/Return", EventClass::DeviceControl),
            ("Device-Side Malloc", EventClass::DeviceControl),
            ("Device-Side Free", EventClass::DeviceControl),
            ("Global-To-Shared Copy", EventClass::DeviceAccess),
            ("Pipeline Commit/Wait", EventClass::DeviceControl),
            ("Remote Shared Memory Access", EventClass::DeviceAccess),
            ("Cluster Barrier", EventClass::DeviceControl),
            ("Any Specific Instruction", EventClass::DeviceControl),
            (
                "Operator Start/End + Tensors + Passes",
                EventClass::Framework,
            ),
            ("Layer/Region Annotations", EventClass::Annotation),
        ];
        assert_eq!(rows.len(), 22);
    }

    #[test]
    fn uvm_fault_routes_by_faulting_device() {
        // The variant's device field is the sharded hub's routing key:
        // it must surface through Event::device() and classify as a
        // host-visible memory event.
        let e = Event::UvmFault {
            launch: LaunchId(4),
            device: DeviceId(1),
            groups: 3,
            migrated_bytes: 1 << 20,
            evicted_bytes: 0,
            stall_ns: 500,
            at: SimTime(9),
        };
        assert_eq!(e.device(), Some(DeviceId(1)));
        assert_eq!(e.class(), EventClass::Memory);
    }

    #[test]
    fn uvm_peer_migrate_routes_by_destination_device() {
        // The destination is whose residency changed — its shard owns
        // the event, whichever lane's context emitted it.
        let e = Event::UvmPeerMigrate {
            launch: LaunchId(2),
            src: DeviceId(0),
            dst: DeviceId(1),
            duplicated_pages: 32,
            invalidated_pages: 0,
            bytes: 2 << 20,
            stall_ns: 1_000,
            at: SimTime(4),
        };
        assert_eq!(e.device(), Some(DeviceId(1)));
        assert_eq!(e.class(), EventClass::Memory);
    }

    #[test]
    fn classes_partition_variants() {
        let e = Event::Sync {
            device: DeviceId(0),
            at: SimTime(0),
        };
        assert_eq!(e.class(), EventClass::Sync);
        let e = Event::Barrier {
            launch: LaunchId(1),
            count: 5,
            cluster: true,
        };
        assert_eq!(e.class(), EventClass::DeviceControl);
        let e = Event::RegionStart {
            label: "l".into(),
            device: DeviceId(0),
        };
        assert_eq!(e.class(), EventClass::Annotation);
    }

    #[test]
    fn resource_free_bytes_are_positive_by_construction() {
        // u64 bytes make the invariant structural: no negative sizes can
        // survive normalization.
        let e = Event::ResourceFree {
            device: DeviceId(0),
            addr: 0x100,
            bytes: 4096,
            at: SimTime(1),
        };
        if let Event::ResourceFree { bytes, .. } = e {
            assert!(bytes > 0);
        }
    }

    #[test]
    fn class_index_is_dense_and_consistent() {
        for (i, class) in EventClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn symbol_events_round_trip_through_serialized_names() {
        // The offline serde shim is marker-only (no wire format exists in
        // this environment), so the round-trip a real serializer would do —
        // Symbol → string → re-interned Symbol on deserialization — is
        // exercised directly: detaching the name to a plain String and
        // re-interning must reconstruct an equal event, and symbols that
        // went through the "wire" must dedup back to the original
        // allocation.
        let original = Event::KernelLaunchEnd {
            launch: LaunchId(3),
            device: DeviceId(0),
            name: Symbol::intern("ampere_sgemm_roundtrip"),
            start: SimTime(10),
            end: SimTime(90),
        };
        let Event::KernelLaunchEnd { name, .. } = &original else {
            unreachable!()
        };
        let wire: String = name.to_string(); // serialize
        let revived = Event::KernelLaunchEnd {
            launch: LaunchId(3),
            device: DeviceId(0),
            name: Symbol::intern(&wire), // deserialize re-interns
            start: SimTime(10),
            end: SimTime(90),
        };
        assert_eq!(original, revived);
        let Event::KernelLaunchEnd { name: revived, .. } = &revived else {
            unreachable!()
        };
        assert!(
            Symbol::ptr_eq(name, revived),
            "re-interning a round-tripped name dedups to the original Arc"
        );
        // A deserializer with its own table still yields equal events.
        let other_table = accel_sim::SymbolTable::new();
        let foreign = other_table.intern(&wire);
        assert_eq!(*name, foreign, "content equality across tables");
    }
}
