//! The event handler: vendor/framework subscription glue.
//!
//! These functions wire the simulated vendor runtimes and the DL framework
//! into a [`SharedHub`], normalizing every callback on the way in — the
//! "interface standardization" box of the paper's Fig. 1. Every normalized
//! event carries its device, so the hub routes it to that device's shard
//! ([`crate::hub::Hub::process`]) and concurrent lanes never share a lock.

use crate::event::Event;
use crate::hub::SharedHub;
use crate::normalize::{normalize_framework, normalize_nv, normalize_roc};
use accel_sim::{LaunchId, SimTime, Symbol};
use dl_framework::session::Session;
use std::collections::HashMap;
use std::sync::Arc;
use vendor_amd::{HipContext, RocCallback};
use vendor_nv::{CudaContext, NvCallback};

/// Subscribes the hub to a CUDA context's host callbacks.
///
/// Launch begin/end pairs are merged into one timed
/// [`Event::KernelLaunchEnd`]; everything else flows through
/// [`normalize_nv`].
pub fn attach_nv(ctx: &mut CudaContext, hub: SharedHub) {
    let hub = Arc::clone(&hub);
    let mut pending: HashMap<LaunchId, (Symbol, SimTime)> = HashMap::new();
    ctx.subscribe(Box::new(move |cb: &NvCallback| match cb {
        NvCallback::LaunchBegin {
            launch,
            name,
            start,
            ..
        } => {
            pending.insert(*launch, (name.clone(), *start));
        }
        NvCallback::LaunchEnd {
            launch,
            device,
            end,
        } => {
            if let Some((name, start)) = pending.remove(launch) {
                hub.process(&Event::KernelLaunchEnd {
                    launch: *launch,
                    device: *device,
                    name,
                    start,
                    end: *end,
                });
            }
        }
        other => {
            if let Some(event) = normalize_nv(other) {
                hub.process(&event);
            }
        }
    }));
}

/// Subscribes the hub to a HIP context's host callbacks.
pub fn attach_roc(ctx: &mut HipContext, hub: SharedHub) {
    let hub = Arc::clone(&hub);
    let mut pending: HashMap<LaunchId, (Symbol, SimTime)> = HashMap::new();
    ctx.subscribe(Box::new(move |cb: &RocCallback| match cb {
        RocCallback::KernelDispatch {
            launch,
            name,
            start,
            ..
        } => {
            pending.insert(*launch, (name.clone(), *start));
        }
        RocCallback::KernelComplete {
            launch,
            device,
            end,
        } => {
            if let Some((name, start)) = pending.remove(launch) {
                hub.process(&Event::KernelLaunchEnd {
                    launch: *launch,
                    device: *device,
                    name,
                    start,
                    end: *end,
                });
            }
        }
        other => {
            if let Some(event) = normalize_roc(other) {
                hub.process(&event);
            }
        }
    }));
}

/// Subscribes the hub to a framework session's callbacks (tensor, op,
/// pass and annotation events).
pub fn attach_session(session: &mut Session<'_>, hub: SharedHub) {
    let hub = Arc::clone(&hub);
    session.subscribe(Box::new(move |ev| {
        let event = normalize_framework(ev);
        hub.process(&event);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::new_shared;
    use crate::processor::EventProcessor;
    use crate::tool::LaunchCounter;
    use accel_sim::{DeviceRuntime, DeviceSpec, Dim3, KernelBody, KernelDesc};
    use dl_framework::dtype::DType;

    #[test]
    fn nv_launches_become_timed_events() {
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<LaunchCounter>::default());
        let hub = new_shared(processor);
        let mut ctx = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        attach_nv(&mut ctx, Arc::clone(&hub));
        let p = ctx.malloc(1 << 20).unwrap();
        let desc = KernelDesc::new("k", Dim3::linear(8), Dim3::linear(128))
            .arg(p, 1 << 20)
            .body(KernelBody::streaming(1 << 19, 1 << 19));
        ctx.launch(desc.clone()).unwrap();
        ctx.launch(desc).unwrap();
        let n = hub
            .primary()
            .tools
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn roc_frees_arrive_normalized() {
        use crate::tool::{Interest, Tool};
        #[derive(Default)]
        struct FreeWatcher {
            frees: Vec<u64>,
        }
        impl Tool for FreeWatcher {
            fn name(&self) -> &str {
                "free-watcher"
            }
            fn interest(&self) -> Interest {
                Interest::coarse()
            }
            fn on_event(&mut self, event: &Event) {
                if let Event::ResourceFree { bytes, .. } = event {
                    self.frees.push(*bytes);
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<FreeWatcher>::default());
        let hub = new_shared(processor);
        let mut ctx = HipContext::new(vec![DeviceSpec::mi300x()]);
        attach_roc(&mut ctx, Arc::clone(&hub));
        let p = ctx.malloc(4096).unwrap();
        ctx.free(p).unwrap();
        let frees = hub
            .primary()
            .tools
            .with_tool_mut("free-watcher", |t: &mut FreeWatcher| t.frees.clone())
            .unwrap();
        assert_eq!(frees, vec![4096], "negative delta normalized to +4096");
    }

    #[test]
    fn framework_events_flow_through_session() {
        let processor = EventProcessor::new();
        let hub = new_shared(processor);
        let mut ctx = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        let mut session = Session::new(&mut ctx);
        attach_session(&mut session, Arc::clone(&hub));
        let t = session.alloc_tensor(&[64], DType::F32).unwrap();
        session.free_tensor(&t);
        // TensorAlloc + TensorFree.
        assert_eq!(hub.events_processed(), 2);
    }
}
