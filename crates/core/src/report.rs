//! Report types returned by tools and sessions.

use crate::error::LaneFailure;
use accel_sim::{DeviceId, OverheadBreakdown, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use uvm_sim::UvmStats;

/// A tool disarmed mid-run after one of its callbacks panicked.
///
/// The dispatch boundary catches the panic, clears the tool out of every
/// dispatch row (the hot path pays nothing for it afterwards) and records
/// the *first* panic message here; sibling tools and the trace recorder
/// keep running. [`crate::ToolCollection::reset`] re-arms the tool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolQuarantine {
    /// Name of the quarantined tool.
    pub tool: String,
    /// First panic message the tool produced.
    pub message: String,
}

impl fmt::Display for ToolQuarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tool `{}` quarantined after a panicking callback: {}",
            self.tool, self.message
        )
    }
}

impl std::error::Error for ToolQuarantine {}

/// A tool's findings: named metrics plus free-form rendered text.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ToolReport {
    /// Tool name.
    pub tool: String,
    /// Named scalar metrics in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Human-readable body (tables, call stacks, …).
    pub text: String,
}

impl ToolReport {
    /// Creates an empty report for `tool`.
    pub fn new(tool: impl Into<String>) -> Self {
        ToolReport {
            tool: tool.into(),
            metrics: Vec::new(),
            text: String::new(),
        }
    }

    /// Appends a metric (builder style).
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Sets the text body (builder style).
    pub fn body(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

impl fmt::Display for ToolReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.tool)?;
        for (name, value) in &self.metrics {
            writeln!(f, "  {name}: {value}")?;
        }
        if !self.text.is_empty() {
            writeln!(f, "{}", self.text)?;
        }
        Ok(())
    }
}

/// The deterministic combination of per-shard tool state the sharded hub
/// produces at session end.
///
/// Each device shard accumulates its own tool instances, knob aggregates
/// and event counts; the merge folds them in a fixed order — each shard's
/// state is internally launch-ordered, shards combine by ascending device
/// id — so repeated runs of the same workload yield byte-identical merged
/// reports regardless of how the emitting threads interleaved.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MergedReport {
    /// Tool reports merged across every shard, in registration order.
    pub tools: Vec<ToolReport>,
    /// The unmerged per-shard breakdown, ascending device id. Single-shard
    /// sessions have one entry mirroring `tools`.
    pub per_device: Vec<(DeviceId, Vec<ToolReport>)>,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Merged UVM statistics — present when the session attached UVM.
    /// The hub itself fills `None` (it owns no residency state); the
    /// session layer overlays its manager's totals and the per-lane
    /// breakdown accumulated from parallel regions.
    pub uvm: Option<UvmReport>,
    /// Tools disarmed mid-run after a panicking callback, deduplicated by
    /// tool name across shards (ascending device id; the first shard's
    /// panic message wins). Empty on a healthy run.
    pub quarantined: Vec<ToolQuarantine>,
    /// Per-lane health: contained lane/workload panics the session
    /// salvaged around. The hub fills this empty (it tracks no lanes);
    /// the session layer overlays its accumulated failures. Empty on a
    /// healthy run.
    pub lane_failures: Vec<LaneFailure>,
}

/// The UVM slice of a [`MergedReport`]: the session manager's totals
/// (per-lane statistics already folded in, ascending device id — the same
/// deterministic order as the tool merge) plus the unmerged per-lane
/// breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UvmReport {
    /// Aggregate UVM statistics across the session, lanes included —
    /// peer-traffic totals ride in
    /// [`UvmStats::peer_pages_in`]/[`UvmStats::peer_stall_ns`].
    pub stats: UvmStats,
    /// Per-device statistics contributed by parallel lanes, ascending
    /// device id. Empty when no parallel region ran with UVM attached.
    pub per_device: Vec<(DeviceId, UvmStats)>,
    /// Shared-range peer-traffic matrix: bytes read-duplicated over the
    /// peer link per (src, dst) device pair, ascending. Empty when no
    /// shared managed ranges were exercised.
    pub peer_bytes: Vec<((DeviceId, DeviceId), u64)>,
}

impl fmt::Display for MergedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== merged report ({} shard(s), {} events) ===",
            self.per_device.len(),
            self.events_processed
        )?;
        if !self.quarantined.is_empty() || !self.lane_failures.is_empty() {
            writeln!(f, "== health ==")?;
            for failure in &self.lane_failures {
                writeln!(f, "  {failure}")?;
            }
            for q in &self.quarantined {
                writeln!(f, "  {q}")?;
            }
        }
        for report in &self.tools {
            write!(f, "{report}")?;
        }
        if let Some(uvm) = &self.uvm {
            writeln!(
                f,
                "== uvm ==\n  pages_in: {} ({} fault groups, {} evicted, {} ns stall)",
                uvm.stats.pages_in(),
                uvm.stats.fault_groups,
                uvm.stats.pages_evicted,
                uvm.stats.total_stall_ns(),
            )?;
            for (device, stats) in &uvm.per_device {
                writeln!(
                    f,
                    "  {device}: {} pages in, {} fault groups, {} ns stall",
                    stats.pages_in(),
                    stats.fault_groups,
                    stats.total_stall_ns(),
                )?;
            }
            if uvm.stats.peer_pages_in > 0 || !uvm.peer_bytes.is_empty() {
                writeln!(
                    f,
                    "  peer: {} pages duplicated, {} invalidated, {} ns stall",
                    uvm.stats.peer_pages_in,
                    uvm.stats.duplicates_invalidated,
                    uvm.stats.peer_stall_ns,
                )?;
                for ((src, dst), bytes) in &uvm.peer_bytes {
                    writeln!(f, "  peer {src}->{dst}: {bytes} bytes duplicated")?;
                }
            }
        }
        Ok(())
    }
}

/// Summary of one profiled run through a [`crate::PastaSession`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Workload label.
    pub workload: String,
    /// Kernels launched during the run.
    pub kernel_launches: u64,
    /// Wall (host virtual) time of the profiled run.
    pub profiled_time: SimTime,
    /// Instrumentation overhead breakdown (Fig. 10 components).
    pub overhead: OverheadBreakdown,
    /// Trace records observed (post-sampling).
    pub records: u64,
    /// Peak live tensor bytes on device 0.
    pub peak_allocated: u64,
    /// Peak reserved (footprint) bytes on device 0.
    pub peak_reserved: u64,
}

impl SessionReport {
    /// `profiled / (profiled - overhead)`: the Fig. 9 overhead factor,
    /// computed against the run's implied uninstrumented time.
    pub fn overhead_factor(&self) -> f64 {
        let profiled = self.profiled_time.as_nanos() as f64;
        let base = profiled - self.overhead.total_ns() as f64;
        if base <= 0.0 {
            return f64::INFINITY;
        }
        profiled / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_report_builder_and_lookup() {
        let r = ToolReport::new("kernel-freq")
            .metric("kernels", 42.0)
            .metric("unique", 7.0)
            .body("top kernel: sgemm");
        assert_eq!(r.get("kernels"), Some(42.0));
        assert_eq!(r.get("nope"), None);
        let s = r.to_string();
        assert!(s.contains("== kernel-freq =="));
        assert!(s.contains("unique: 7"));
        assert!(s.contains("sgemm"));
    }

    #[test]
    fn merged_report_display_includes_the_uvm_slice() {
        let report = MergedReport {
            tools: vec![ToolReport::new("t").metric("m", 1.0)],
            per_device: vec![(DeviceId(0), Vec::new())],
            events_processed: 5,
            uvm: Some(UvmReport {
                stats: UvmStats {
                    demand_pages_in: 32,
                    fault_groups: 2,
                    fault_stall_ns: 700,
                    ..UvmStats::default()
                },
                per_device: vec![(
                    DeviceId(1),
                    UvmStats {
                        demand_pages_in: 32,
                        fault_groups: 2,
                        fault_stall_ns: 700,
                        ..UvmStats::default()
                    },
                )],
                peer_bytes: vec![((DeviceId(0), DeviceId(1)), 4096)],
            }),
            quarantined: Vec::new(),
            lane_failures: Vec::new(),
        };
        let s = report.to_string();
        assert!(s.contains("== uvm =="), "UVM slice rendered: {s}");
        assert!(s.contains("pages_in: 32"), "{s}");
        assert!(s.contains("gpu1: 32 pages in"), "{s}");
        assert!(s.contains("peer gpu0->gpu1: 4096 bytes duplicated"), "{s}");
        // Sessions without UVM print no empty section.
        let without = MergedReport::default().to_string();
        assert!(!without.contains("uvm"));
    }

    #[test]
    fn merged_report_display_renders_health_when_degraded() {
        let report = MergedReport {
            quarantined: vec![ToolQuarantine {
                tool: "flaky".into(),
                message: "boom".into(),
            }],
            lane_failures: vec![LaneFailure {
                device: Some(DeviceId(1)),
                payload: "lane died".into(),
            }],
            ..MergedReport::default()
        };
        let s = report.to_string();
        assert!(s.contains("== health =="), "{s}");
        assert!(s.contains("`flaky` quarantined"), "{s}");
        assert!(s.contains("gpu1"), "{s}");
        // Healthy reports stay byte-identical to the pre-containment
        // rendering: no empty health section.
        assert!(!MergedReport::default().to_string().contains("health"));
    }

    #[test]
    fn overhead_factor_math() {
        let r = SessionReport {
            workload: "w".into(),
            kernel_launches: 1,
            profiled_time: SimTime(1_000),
            overhead: OverheadBreakdown {
                collection_ns: 300,
                transfer_ns: 100,
                analysis_ns: 100,
                setup_ns: 0,
            },
            records: 0,
            peak_allocated: 0,
            peak_reserved: 0,
        };
        assert!((r.overhead_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_factor_saturates_to_infinity() {
        let r = SessionReport {
            workload: "w".into(),
            kernel_launches: 0,
            profiled_time: SimTime(100),
            overhead: OverheadBreakdown {
                analysis_ns: 200,
                ..OverheadBreakdown::default()
            },
            records: 0,
            peak_allocated: 0,
            peak_reserved: 0,
        };
        assert!(r.overhead_factor().is_infinite());
    }
}
