//! The shared event hub and its device-trace sink.
//!
//! Vendor callbacks arrive from closures, device traces from the
//! profiler's sink, framework events from session subscribers — all on
//! different call paths. A [`SharedHub`] (an `Arc<Mutex<EventProcessor>>`
//! in spirit) gives them one meeting point.
//!
//! The fine-grained path through [`HubSink`] is the hottest code in the
//! system (millions of events per profiled run) and is kept cheap by three
//! cooperating mechanisms:
//!
//! 1. **Interest gate** — at kernel begin the sink caches the launch's
//!    [`ProbeConfig`] together with the processor's per-class tool
//!    subscriptions in a [`LaunchGate`]; `on_batch`/`on_barriers`/
//!    `on_blocks`/`on_instructions` return *before* taking the hub lock or
//!    constructing an [`Event`] when nothing downstream wants the class.
//! 2. **Interned names** — [`TraceCtx::name`] is a [`Symbol`], so events
//!    carry a refcount bump instead of a fresh `String` per event.
//! 3. **Batched flushes** — admitted events accumulate in a sink-local
//!    buffer (mirroring the simulated device-side trace buffer) and drain
//!    into the processor under a single lock per flush/kernel-end instead
//!    of lock-per-event.

use crate::event::{Event, EventClass};
use crate::processor::EventProcessor;
use accel_sim::instrument::{DeviceTraceSink, TraceCtx};
use accel_sim::{AccessBatch, KernelTraceSummary, LaunchId, MemSpace, ProbeConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// The hub: the processor behind a shareable lock.
#[derive(Debug)]
pub struct Hub {
    /// The event processor.
    pub processor: EventProcessor,
}

/// Shared handle to the hub.
pub type SharedHub = Arc<Mutex<Hub>>;

/// Creates a shared hub around a processor.
pub fn new_shared(processor: EventProcessor) -> SharedHub {
    Arc::new(Mutex::new(Hub { processor }))
}

/// Buffered events per flush: one hub lock amortizes over this many
/// fine-grained events (the sink-local analogue of the device trace
/// buffer in the simulated profiler).
const FLUSH_EVENTS: usize = 256;

/// Drains `buffer` into a hub whose lock the caller already holds.
fn drain_into(buffer: &mut Vec<Event>, hub: &mut Hub) {
    if buffer.is_empty() {
        return;
    }
    hub.processor.process_batch(buffer);
    buffer.clear();
}

/// Per-launch admission decisions, computed once at kernel begin.
#[derive(Debug, Clone, Copy)]
struct LaunchGate {
    launch: LaunchId,
    /// Probe configuration the processor returned for this launch.
    config: ProbeConfig,
    /// Some tool subscribed to [`EventClass::DeviceAccess`].
    access_tools: bool,
    /// Some tool subscribed to [`EventClass::DeviceControl`].
    control_tools: bool,
}

impl LaunchGate {
    fn for_launch(launch: LaunchId, config: ProbeConfig, processor: &EventProcessor) -> Self {
        LaunchGate {
            launch,
            config,
            access_tools: processor.class_wanted(EventClass::DeviceAccess),
            control_tools: processor.class_wanted(EventClass::DeviceControl),
        }
    }

    fn wants_batches(&self) -> bool {
        self.access_tools && (self.config.global_accesses || self.config.shared_accesses)
    }

    fn wants_barriers(&self) -> bool {
        self.control_tools && self.config.barriers
    }

    fn wants_blocks(&self) -> bool {
        self.control_tools && self.config.block_boundaries
    }

    fn wants_instructions(&self) -> bool {
        self.control_tools
    }
}

/// The device-trace sink that feeds fine-grained events into the hub.
#[derive(Debug)]
pub struct HubSink {
    hub: SharedHub,
    buffer: Vec<Event>,
    gate: Option<LaunchGate>,
}

impl HubSink {
    /// Creates a sink feeding `hub`.
    pub fn new(hub: SharedHub) -> Self {
        HubSink {
            hub,
            buffer: Vec::with_capacity(FLUSH_EVENTS),
            gate: None,
        }
    }

    /// Events currently buffered (not yet visible to the processor).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Drains buffered events into the processor under one lock.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut hub = self.hub.lock();
        drain_into(&mut self.buffer, &mut hub);
    }

    fn push(&mut self, event: Event) {
        self.buffer.push(event);
        if self.buffer.len() >= FLUSH_EVENTS {
            self.flush();
        }
    }

    /// The gate for `launch`, recomputed under the lock only when a
    /// callback arrives out of band (no preceding `on_kernel_begin`).
    fn gate_for(&mut self, launch: LaunchId) -> LaunchGate {
        match self.gate {
            Some(gate) if gate.launch == launch => gate,
            _ => {
                let hub = self.hub.lock();
                let config = hub.processor.probe_config_for(launch);
                let gate = LaunchGate::for_launch(launch, config, &hub.processor);
                drop(hub);
                self.gate = Some(gate);
                gate
            }
        }
    }
}

impl DeviceTraceSink for HubSink {
    fn on_kernel_begin(&mut self, ctx: &TraceCtx) -> ProbeConfig {
        let mut hub = self.hub.lock();
        // Leftovers from a launch whose end never reached us drain first so
        // cross-launch ordering is preserved.
        drain_into(&mut self.buffer, &mut hub);
        let config = hub.processor.probe_config_for(ctx.launch);
        hub.processor.process(&Event::KernelLaunchBegin {
            launch: ctx.launch,
            device: ctx.device,
            stream: ctx.stream,
            name: ctx.name.clone(),
            grid: ctx.grid,
            block: ctx.block,
        });
        let gate = LaunchGate::for_launch(ctx.launch, config, &hub.processor);
        drop(hub);
        self.gate = Some(gate);
        config
    }

    fn on_batch(&mut self, ctx: &TraceCtx, batch: &AccessBatch) {
        if !self.gate_for(ctx.launch).wants_batches() {
            return; // no lock taken, no event constructed
        }
        let event = match batch.space {
            MemSpace::Shared | MemSpace::RemoteShared => Event::SharedAccess {
                launch: ctx.launch,
                kernel: ctx.name.clone(),
                batch: batch.clone(),
            },
            _ => Event::GlobalAccess {
                launch: ctx.launch,
                kernel: ctx.name.clone(),
                batch: batch.clone(),
            },
        };
        self.push(event);
    }

    fn on_barriers(&mut self, ctx: &TraceCtx, count: u64) {
        if !self.gate_for(ctx.launch).wants_barriers() {
            return;
        }
        self.push(Event::Barrier {
            launch: ctx.launch,
            count,
            cluster: false,
        });
    }

    fn on_blocks(&mut self, ctx: &TraceCtx, count: u64) {
        if !self.gate_for(ctx.launch).wants_blocks() {
            return;
        }
        self.push(Event::BlockBoundary {
            launch: ctx.launch,
            count,
        });
    }

    fn on_instructions(&mut self, ctx: &TraceCtx, count: u64) {
        if !self.gate_for(ctx.launch).wants_instructions() {
            return;
        }
        self.push(Event::Instructions {
            launch: ctx.launch,
            count,
        });
    }

    fn on_kernel_end(&mut self, ctx: &TraceCtx, summary: &KernelTraceSummary) {
        // One lock drains the launch's buffered events and delivers the
        // trace summary, which always flows (the knob aggregates feed on
        // it even when no tool subscribed).
        let mut hub = self.hub.lock();
        drain_into(&mut self.buffer, &mut hub);
        hub.processor.process(&Event::KernelTrace {
            launch: ctx.launch,
            kernel: ctx.name.clone(),
            summary: summary.clone(),
        });
        drop(hub);
        self.gate = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{AccessKind, AccessPattern, DeviceId, Dim3, LaunchId, Symbol};

    fn ctx() -> TraceCtx {
        TraceCtx {
            launch: LaunchId(7),
            device: DeviceId(0),
            stream: 0,
            name: "gemm".into(),
            grid: Dim3::linear(8),
            block: Dim3::linear(128),
        }
    }

    fn batch(space: MemSpace) -> AccessBatch {
        AccessBatch {
            launch: LaunchId(7),
            spec_index: 0,
            base: 0x1000,
            len: 4096,
            records: 32,
            bytes: 4096,
            elem_size: 4,
            kind: AccessKind::Load,
            space,
            pattern: AccessPattern::Sequential,
        }
    }

    #[derive(Default)]
    struct SpaceCounter {
        global: u64,
        shared: u64,
    }
    impl crate::tool::Tool for SpaceCounter {
        fn name(&self) -> &str {
            "spaces"
        }
        fn interest(&self) -> crate::tool::Interest {
            crate::tool::Interest::all()
        }
        fn on_event(&mut self, event: &Event) {
            match event {
                Event::GlobalAccess { .. } => self.global += 1,
                Event::SharedAccess { .. } => self.shared += 1,
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn sink_routes_batches_by_space() {
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<SpaceCounter>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        assert!(config.global_accesses);
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        sink.on_batch(&ctx(), &batch(MemSpace::Shared));
        sink.on_batch(&ctx(), &batch(MemSpace::RemoteShared));
        sink.on_kernel_end(&ctx(), &KernelTraceSummary::default());
        let (g, s) = hub
            .lock()
            .processor
            .tools
            .with_tool_mut("spaces", |t: &mut SpaceCounter| (t.global, t.shared))
            .unwrap();
        assert_eq!(g, 1);
        assert_eq!(s, 2);
    }

    #[test]
    fn kernel_begin_emits_event_and_config() {
        let hub = new_shared(EventProcessor::new());
        let mut sink = HubSink::new(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        // No tools registered: nothing to instrument.
        assert!(config.is_disabled());
        assert_eq!(hub.lock().processor.events_processed(), 1);
    }

    #[test]
    fn disabled_config_short_circuits_batches() {
        // Regression (ISSUE 2 satellite): a launch whose ProbeConfig came
        // back disabled must not construct or deliver batch events — the
        // seed cloned `batch` and `ctx.name` before asking anyone.
        let hub = new_shared(EventProcessor::new()); // no tools → disabled
        let mut sink = HubSink::new(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        assert!(config.is_disabled());
        for _ in 0..100 {
            sink.on_batch(&ctx(), &batch(MemSpace::Global));
            sink.on_barriers(&ctx(), 8);
            sink.on_instructions(&ctx(), 1_000);
        }
        assert_eq!(sink.buffered(), 0, "gated events are never buffered");
        // Only the KernelLaunchBegin event reached the processor.
        assert_eq!(hub.lock().processor.events_processed(), 1);
    }

    #[test]
    fn coarse_tools_never_see_device_batches() {
        // Per-class gating: a coarse-interest tool must not cause batch
        // events to be constructed, even though its interest is non-empty.
        let mut processor = EventProcessor::new();
        processor
            .tools
            .register(Box::<crate::tool::LaunchCounter>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        sink.on_kernel_begin(&ctx());
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        sink.on_barriers(&ctx(), 8);
        assert_eq!(sink.buffered(), 0);
        sink.on_kernel_end(&ctx(), &KernelTraceSummary::default());
        // KernelLaunchBegin + KernelTrace only.
        assert_eq!(hub.lock().processor.events_processed(), 2);
    }

    #[test]
    fn buffered_events_flush_at_kernel_end_in_order() {
        #[derive(Default)]
        struct OrderProbe {
            classes: Vec<EventClass>,
        }
        impl crate::tool::Tool for OrderProbe {
            fn name(&self) -> &str {
                "order"
            }
            fn interest(&self) -> crate::tool::Interest {
                crate::tool::Interest::all()
            }
            fn on_event(&mut self, event: &Event) {
                self.classes.push(event.class());
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<OrderProbe>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        sink.on_kernel_begin(&ctx());
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        assert!(sink.buffered() > 0, "fine events buffer until a flush");
        assert_eq!(
            hub.lock().processor.events_processed(),
            1,
            "only KernelLaunchBegin so far"
        );
        sink.on_barriers(&ctx(), 4);
        sink.on_kernel_end(&ctx(), &KernelTraceSummary::default());
        assert_eq!(sink.buffered(), 0);
        let classes = hub
            .lock()
            .processor
            .tools
            .with_tool_mut("order", |t: &mut OrderProbe| t.classes.clone())
            .unwrap();
        assert_eq!(
            classes,
            vec![
                EventClass::Kernel,        // KernelLaunchBegin
                EventClass::DeviceAccess,  // GlobalAccess
                EventClass::DeviceControl, // Barrier
                EventClass::DeviceControl, // KernelTrace
            ]
        );
    }

    #[test]
    fn full_buffer_flushes_mid_launch() {
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<SpaceCounter>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        sink.on_kernel_begin(&ctx());
        for _ in 0..(FLUSH_EVENTS + 10) {
            sink.on_batch(&ctx(), &batch(MemSpace::Global));
        }
        assert_eq!(sink.buffered(), 10, "one full buffer drained mid-launch");
        assert_eq!(
            hub.lock().processor.events_processed() as usize,
            1 + FLUSH_EVENTS
        );
    }

    #[test]
    fn event_names_share_one_interned_allocation_per_launch() {
        // The ISSUE-2 acceptance check: zero per-event String allocations —
        // every event of a launch carries the *same* Arc<str>.
        #[derive(Default)]
        struct NameCollector {
            names: Vec<Symbol>,
        }
        impl crate::tool::Tool for NameCollector {
            fn name(&self) -> &str {
                "names"
            }
            fn interest(&self) -> crate::tool::Interest {
                crate::tool::Interest::all()
            }
            fn on_event(&mut self, event: &Event) {
                match event {
                    Event::KernelLaunchBegin { name, .. } => self.names.push(name.clone()),
                    Event::GlobalAccess { kernel, .. }
                    | Event::SharedAccess { kernel, .. }
                    | Event::KernelTrace { kernel, .. } => self.names.push(kernel.clone()),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<NameCollector>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        let ctx = ctx();
        sink.on_kernel_begin(&ctx);
        for _ in 0..8 {
            sink.on_batch(&ctx, &batch(MemSpace::Global));
            sink.on_batch(&ctx, &batch(MemSpace::Shared));
        }
        sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
        let names = hub
            .lock()
            .processor
            .tools
            .with_tool_mut("names", |t: &mut NameCollector| t.names.clone())
            .unwrap();
        assert_eq!(names.len(), 1 + 16 + 1);
        for n in &names {
            assert!(
                Symbol::ptr_eq(n, &names[0]),
                "every event shares the launch's single interned name"
            );
        }
    }
}
