//! The shared event hub and its device-trace sink.
//!
//! Vendor callbacks arrive from closures, device traces from the
//! profiler's sink, framework events from session subscribers — all on
//! different call paths. A [`SharedHub`] (an `Arc<Mutex<EventProcessor>>`
//! in spirit) gives them one meeting point.

use crate::event::Event;
use crate::processor::EventProcessor;
use accel_sim::instrument::{DeviceTraceSink, TraceCtx};
use accel_sim::{AccessBatch, KernelTraceSummary, MemSpace, ProbeConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// The hub: the processor behind a shareable lock.
#[derive(Debug)]
pub struct Hub {
    /// The event processor.
    pub processor: EventProcessor,
}

/// Shared handle to the hub.
pub type SharedHub = Arc<Mutex<Hub>>;

/// Creates a shared hub around a processor.
pub fn new_shared(processor: EventProcessor) -> SharedHub {
    Arc::new(Mutex::new(Hub { processor }))
}

/// The device-trace sink that feeds fine-grained events into the hub.
#[derive(Debug)]
pub struct HubSink(pub SharedHub);

impl DeviceTraceSink for HubSink {
    fn on_kernel_begin(&mut self, ctx: &TraceCtx) -> ProbeConfig {
        let mut hub = self.0.lock();
        let config = hub.processor.probe_config_for(ctx.launch);
        hub.processor.process(&Event::KernelLaunchBegin {
            launch: ctx.launch,
            device: ctx.device,
            stream: ctx.stream,
            name: ctx.name.clone(),
            grid: ctx.grid,
            block: ctx.block,
        });
        config
    }

    fn on_batch(&mut self, ctx: &TraceCtx, batch: &AccessBatch) {
        let event = match batch.space {
            MemSpace::Shared | MemSpace::RemoteShared => Event::SharedAccess {
                launch: ctx.launch,
                kernel: ctx.name.clone(),
                batch: batch.clone(),
            },
            _ => Event::GlobalAccess {
                launch: ctx.launch,
                kernel: ctx.name.clone(),
                batch: batch.clone(),
            },
        };
        self.0.lock().processor.process(&event);
    }

    fn on_barriers(&mut self, ctx: &TraceCtx, count: u64) {
        self.0.lock().processor.process(&Event::Barrier {
            launch: ctx.launch,
            count,
            cluster: false,
        });
    }

    fn on_blocks(&mut self, ctx: &TraceCtx, count: u64) {
        self.0.lock().processor.process(&Event::BlockBoundary {
            launch: ctx.launch,
            count,
        });
    }

    fn on_instructions(&mut self, ctx: &TraceCtx, count: u64) {
        self.0.lock().processor.process(&Event::Instructions {
            launch: ctx.launch,
            count,
        });
    }

    fn on_kernel_end(&mut self, ctx: &TraceCtx, summary: &KernelTraceSummary) {
        self.0.lock().processor.process(&Event::KernelTrace {
            launch: ctx.launch,
            kernel: ctx.name.clone(),
            summary: summary.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{AccessKind, AccessPattern, DeviceId, Dim3, LaunchId};

    fn ctx() -> TraceCtx {
        TraceCtx {
            launch: LaunchId(7),
            device: DeviceId(0),
            stream: 0,
            name: "gemm".into(),
            grid: Dim3::linear(8),
            block: Dim3::linear(128),
        }
    }

    fn batch(space: MemSpace) -> AccessBatch {
        AccessBatch {
            launch: LaunchId(7),
            spec_index: 0,
            base: 0x1000,
            len: 4096,
            records: 32,
            bytes: 4096,
            elem_size: 4,
            kind: AccessKind::Load,
            space,
            pattern: AccessPattern::Sequential,
        }
    }

    #[test]
    fn sink_routes_batches_by_space() {
        use crate::tool::{Interest, Tool};
        #[derive(Default)]
        struct SpaceCounter {
            global: u64,
            shared: u64,
        }
        impl Tool for SpaceCounter {
            fn name(&self) -> &str {
                "spaces"
            }
            fn interest(&self) -> Interest {
                Interest::all()
            }
            fn on_event(&mut self, event: &Event) {
                match event {
                    Event::GlobalAccess { .. } => self.global += 1,
                    Event::SharedAccess { .. } => self.shared += 1,
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<SpaceCounter>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        assert!(config.global_accesses);
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        sink.on_batch(&ctx(), &batch(MemSpace::Shared));
        sink.on_batch(&ctx(), &batch(MemSpace::RemoteShared));
        let (g, s) = hub
            .lock()
            .processor
            .tools
            .with_tool_mut("spaces", |t: &mut SpaceCounter| (t.global, t.shared))
            .unwrap();
        assert_eq!(g, 1);
        assert_eq!(s, 2);
    }

    #[test]
    fn kernel_begin_emits_event_and_config() {
        let hub = new_shared(EventProcessor::new());
        let mut sink = HubSink(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        // No tools registered: nothing to instrument.
        assert!(config.is_disabled());
        assert_eq!(hub.lock().processor.events_processed(), 1);
    }
}
