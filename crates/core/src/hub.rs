//! The sharded event hub and its device-trace sink.
//!
//! Vendor callbacks arrive from closures, device traces from the
//! profiler's sink, framework events from session subscribers — all on
//! different call paths and, since the parallel workloads went
//! multi-threaded, potentially from several OS threads at once. A single
//! `Mutex<EventProcessor>` would funnel every device through one lock;
//! instead the [`Hub`] is a set of [`DeviceShard`]s — one
//! [`EventProcessor`] (tools + knobs + stacks) per [`DeviceId`], each
//! behind its own lock — so concurrent emission from different devices
//! never contends. A [`MergedReport`] combines per-shard tool state
//! deterministically (launch order within a device, ascending device id
//! across devices) at session end.
//!
//! The fine-grained path through [`HubSink`] is the hottest code in the
//! system (millions of events per profiled run) and is kept cheap by four
//! cooperating mechanisms:
//!
//! 1. **Interest gate** — at kernel begin the sink caches the launch's
//!    [`ProbeConfig`] together with the shard's per-class tool
//!    subscriptions in a [`LaunchGate`]; `on_batch`/`on_barriers`/
//!    `on_blocks`/`on_instructions` return *before* taking any lock or
//!    constructing an [`Event`] when nothing downstream wants the class.
//! 2. **Interned names** — [`TraceCtx::name`] is a [`Symbol`], so events
//!    carry a refcount bump instead of a fresh `String` per event.
//! 3. **Per-class spill buffers** — admitted events accumulate in
//!    sink-local fixed-capacity buffers segregated by [`EventClass`]
//!    (mirroring the simulated device-side trace buffer), so the drain
//!    resolves each class's dispatch row once per flush instead of
//!    matching on the class per event. Within a class events stay in
//!    emission order; across classes a flush drains accesses before
//!    control events — no tool observes a barrier "before" the accesses
//!    of its own flush window.
//! 4. **Batched flushes** — a full buffer (or kernel end) spills the
//!    whole window at once instead of handing off event-by-event.
//! 5. **The lock-free spine** ([`crate::spine`]) — in the default
//!    [`SpineMode::Ring`], a spill *pushes* the batch onto a bounded SPSC
//!    ring instead of running tool dispatch under the shard mutex; the
//!    shard side (a background [`crate::spine::SpineDrainer`], a
//!    backpressured producer, or the next harvest) drains it off the
//!    emission critical path. [`SpineMode::Inline`] keeps the historical
//!    drain-under-lock behaviour as the differential reference. Every
//!    acquisition through [`DeviceShard::lock`] drains pending rings
//!    first, so reports, recorders and resets observe every pushed event
//!    exactly once — [`Hub::quiesce`] is the explicit entry point.
//!
//! [`Symbol`]: accel_sim::Symbol

use crate::event::{Event, EventClass};
use crate::processor::EventProcessor;
use crate::report::{MergedReport, ToolQuarantine, ToolReport};
use crate::spine::{EventRing, ShardSpine, SpineConfig, SpineMode, SpineMsg};
use crate::tool::Tool;
use accel_sim::instrument::{DeviceTraceSink, TraceCtx};
use accel_sim::{AccessBatch, DeviceId, KernelTraceSummary, LaunchId, MemSpace, ProbeConfig};
use dl_framework::pycall::CrossLayerStack;
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;

/// One device's slice of the hub: its event processor behind its own
/// lock, plus the spine registry of SPSC rings feeding it.
#[derive(Debug)]
pub struct DeviceShard {
    device: DeviceId,
    processor: Mutex<EventProcessor>,
    spine: ShardSpine,
}

impl DeviceShard {
    fn new(device: DeviceId, processor: EventProcessor) -> DeviceShard {
        DeviceShard {
            device,
            processor: Mutex::new(processor),
            spine: ShardSpine::default(),
        }
    }

    /// The device this shard serves.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Locks this shard's processor, draining any spine messages queued
    /// by ring-mode sinks first — the guard therefore always observes a
    /// state that includes every event pushed before the acquisition
    /// (the exactly-once contract for reports and recorders).
    pub fn lock(&self) -> MutexGuard<'_, EventProcessor> {
        let mut guard = self.processor.lock();
        self.spine.drain(&mut guard);
        guard
    }

    /// Locks without draining — for reads that depend only on state the
    /// spine cannot carry (probe configs: region events arrive on the
    /// host path, which drains synchronously). Keeps per-launch gate
    /// reads off the drain path.
    pub(crate) fn lock_raw(&self) -> MutexGuard<'_, EventProcessor> {
        self.processor.lock()
    }

    /// Opportunistically drains this shard's rings: a no-op (returning 0)
    /// when someone else holds the processor lock — they will drain.
    /// Returns the number of events drained. The [`crate::spine::SpineDrainer`]
    /// heartbeat.
    pub fn try_drain(&self) -> u64 {
        match self.processor.try_lock() {
            Some(mut guard) => self.spine.drain(&mut guard),
            None => 0,
        }
    }

    /// Registers a sink's ring as feeding this shard.
    pub(crate) fn register_ring(&self, ring: Arc<EventRing>) {
        self.spine.register(ring);
    }
}

/// The hub: per-device [`DeviceShard`]s plus the deterministic merge.
///
/// A hub with one shard (the [`new_shared`] constructor, or any session
/// holding a tool that declines [`Tool::fork`]) routes every device
/// through that shard — the pre-sharding behaviour. A sharded hub routes
/// each device-attributed event to its device's shard and leaves
/// launch-scoped fine events to the [`HubSink`] that is already bound to
/// its shard.
#[derive(Debug)]
pub struct Hub {
    shards: Vec<DeviceShard>,
    /// Worker budget for the session-end merge plan (`0` = available
    /// parallelism); see [`Hub::set_merge_threads`].
    merge_threads: std::sync::atomic::AtomicUsize,
}

/// Shared handle to the hub.
pub type SharedHub = Arc<Hub>;

/// Creates a shared single-shard hub around a processor (every device
/// routes through the one shard).
pub fn new_shared(processor: EventProcessor) -> SharedHub {
    Arc::new(Hub::single(processor))
}

impl Hub {
    /// A single-shard hub serving every device.
    pub fn single(processor: EventProcessor) -> Hub {
        Hub {
            shards: vec![DeviceShard::new(DeviceId(0), processor)],
            merge_threads: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// A sharded hub: one processor per device.
    ///
    /// # Errors
    ///
    /// Rejects an empty shard list and duplicate [`DeviceId`]s — two
    /// shards for one device would split that device's event stream and
    /// make the merge double-count.
    pub fn sharded(shards: Vec<(DeviceId, EventProcessor)>) -> Result<Hub, String> {
        if shards.is_empty() {
            return Err("sharded hub needs at least one device shard".into());
        }
        for (i, (device, _)) in shards.iter().enumerate() {
            if shards[..i].iter().any(|(d, _)| d == device) {
                return Err(format!(
                    "duplicate device {device} in the session device list: \
                     each device gets exactly one shard"
                ));
            }
        }
        let mut shards: Vec<DeviceShard> = shards
            .into_iter()
            .map(|(device, processor)| DeviceShard::new(device, processor))
            .collect();
        shards.sort_by_key(|s| s.device);
        Ok(Hub {
            shards,
            merge_threads: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Caps the worker threads the session-end merge plan
    /// ([`crate::merge`]) may use for this hub's folds (`0` = available
    /// parallelism). Thread count never changes merged bytes — the tree
    /// shape is a function of shard count alone — so this is purely a
    /// resource knob; `PastaBuilder` stamps it from
    /// `ParallelConfig::max_merge_threads`.
    pub fn set_merge_threads(&self, max_threads: usize) {
        self.merge_threads
            .store(max_threads, std::sync::atomic::Ordering::Release);
    }

    /// The merge plan's worker budget (`0` = available parallelism).
    pub fn merge_threads(&self) -> usize {
        self.merge_threads
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// True when the hub routes devices to distinct shards.
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// The shards, ascending device id.
    pub fn shards(&self) -> &[DeviceShard] {
        &self.shards
    }

    /// The shard serving `device`. Single-shard hubs (and unknown
    /// devices) fall back to the first shard.
    pub fn shard_for(&self, device: DeviceId) -> &DeviceShard {
        // Builder-made hubs hold devices 0..n in order, so the common case
        // is a direct index; anything else scans.
        let i = device.index();
        if let Some(shard) = self.shards.get(i) {
            if shard.device == device {
                return shard;
            }
        }
        self.shards
            .iter()
            .find(|s| s.device == device)
            .unwrap_or(&self.shards[0])
    }

    /// Locks the shard serving `device`, draining its pending spine
    /// messages first (see [`DeviceShard::lock`]).
    pub fn lock_device(&self, device: DeviceId) -> MutexGuard<'_, EventProcessor> {
        self.shard_for(device).lock()
    }

    /// Locks the primary (lowest-device) shard — where deviceless state
    /// like builder-registered tool instances lives. Drain-first like
    /// every shard lock, so the guard's view is quiescent.
    pub fn primary(&self) -> MutexGuard<'_, EventProcessor> {
        self.shards[0].lock()
    }

    /// Routes one event to its device's shard (events without a device —
    /// launch-scoped fine events arriving out of band — go to the primary
    /// shard) and processes it.
    ///
    /// `pasta.start()`/`pasta.stop()` region annotations additionally
    /// update every *other* shard's range observation: the analysis range
    /// gates the whole session (§III-F1), so a region opened while device
    /// 0 is current must also admit launches on device 1. Only the home
    /// shard dispatches the event to tools, so merges never double-count.
    pub fn process(&self, event: &Event) {
        let home = match event.device() {
            Some(device) => self.shard_for(device),
            None => &self.shards[0],
        };
        home.lock().process(event);
        if self.is_sharded() && matches!(event, Event::RegionStart { .. } | Event::RegionEnd { .. })
        {
            for shard in &self.shards {
                if !std::ptr::eq(shard, home) {
                    shard.lock().observe_range(event);
                }
            }
        }
    }

    /// Drains every shard's pending spine messages into its processor —
    /// the documented quiescent-drain entry point for harvesting and
    /// reset paths. Returns the number of events drained.
    ///
    /// Callers rarely need this explicitly: every shard-lock acquisition
    /// through [`DeviceShard::lock`] (and therefore every report, knob,
    /// stack, recorder and reset path on the hub) drains first, so those
    /// views are quiescent by construction. Call `quiesce` directly when
    /// pending ring-mode events must become visible *without* taking any
    /// further action — e.g. before comparing `events_processed` across
    /// hubs, or after a parallel region whose drainers were stopped.
    ///
    /// Events pushed before this call are processed when it returns;
    /// producers still running may of course push more afterwards.
    pub fn quiesce(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let mut guard = s.processor.lock();
                s.spine.drain(&mut guard)
            })
            .sum()
    }

    /// Attaches one trace recorder per shard: `make` is called once per
    /// shard in ascending device order and the returned recorder observes
    /// every event that shard processes from then on (the capture half of
    /// `pasta-trace`). Replaces any previously attached recorders.
    pub fn attach_recorders(
        &self,
        mut make: impl FnMut(DeviceId) -> Box<dyn crate::processor::EventRecorder>,
    ) {
        for shard in &self.shards {
            let recorder = make(shard.device);
            shard.lock().set_recorder(recorder);
        }
    }

    /// Detaches every shard's trace recorder, returning them in ascending
    /// device order (shards without one are skipped).
    pub fn detach_recorders(&self) -> Vec<(DeviceId, Box<dyn crate::processor::EventRecorder>)> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().take_recorder().map(|r| (s.device, r)))
            .collect()
    }

    /// Events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().events_processed())
            .sum()
    }

    /// Resets every shard's accumulated analysis state.
    pub fn reset_all(&self) {
        for shard in &self.shards {
            shard.lock().reset();
        }
    }

    /// Merged tool reports, registration order. Single-shard hubs report
    /// directly; sharded hubs fold every shard's instance of each tool
    /// into a fresh fork, ascending device id, leaving shard state
    /// untouched (the merge is repeatable).
    pub fn merged_reports(&self) -> Vec<ToolReport> {
        if !self.is_sharded() {
            return self.primary().tools.reports();
        }
        let guards: Vec<MutexGuard<'_, EventProcessor>> =
            self.shards.iter().map(DeviceShard::lock).collect();
        let procs: Vec<&EventProcessor> = guards.iter().map(|g| &**g).collect();
        merge_all_tools(&procs, self.merge_threads())
            .iter()
            .map(|t| t.report())
            .collect()
    }

    /// The full merged report: merged tools, the per-shard breakdown, and
    /// the total event count — all derived from one pass over the shard
    /// locks, so the snapshot is internally consistent even while
    /// emitters are still running (`sum(per_device) == merged totals`).
    pub fn merged_report(&self) -> MergedReport {
        let guards: Vec<MutexGuard<'_, EventProcessor>> =
            self.shards.iter().map(DeviceShard::lock).collect();
        let tools = if guards.len() == 1 {
            guards[0].tools.reports()
        } else {
            let procs: Vec<&EventProcessor> = guards.iter().map(|g| &**g).collect();
            merge_all_tools(&procs, self.merge_threads())
                .iter()
                .map(|t| t.report())
                .collect()
        };
        MergedReport {
            tools,
            per_device: self
                .shards
                .iter()
                .zip(&guards)
                .map(|(s, g)| (s.device, g.tools.reports()))
                .collect(),
            events_processed: guards.iter().map(|g| g.events_processed()).sum(),
            uvm: None,
            quarantined: collect_quarantines(guards.iter().map(|g| &**g)),
            // The hub tracks no lanes; the session layer overlays its
            // accumulated failures.
            lane_failures: Vec::new(),
        }
    }

    /// Quarantine records across every shard, deduplicated by tool name
    /// (ascending device id, first shard's message wins). Empty on a
    /// healthy run.
    pub fn quarantines(&self) -> Vec<ToolQuarantine> {
        let guards: Vec<MutexGuard<'_, EventProcessor>> =
            self.shards.iter().map(DeviceShard::lock).collect();
        collect_quarantines(guards.iter().map(|g| &**g))
    }

    /// Runs `f` against the *merged* view of the named tool: every
    /// shard's instance folded into a fresh fork (ascending device id).
    /// On single-shard hubs `f` sees the live instance directly.
    pub fn with_merged_tool<T: Tool + 'static, R>(
        &self,
        name: &str,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        if !self.is_sharded() {
            let mut guard = self.primary();
            return guard.tools.with_tool_mut(name, |t: &mut T| f(t));
        }
        let guards: Vec<MutexGuard<'_, EventProcessor>> =
            self.shards.iter().map(DeviceShard::lock).collect();
        let procs: Vec<&EventProcessor> = guards.iter().map(|g| &**g).collect();
        let i = (0..procs[0].tools.len())
            .find(|&i| procs[0].tools.tool_at(i).is_some_and(|t| t.name() == name))?;
        let merged = merge_tool_index(&procs, i, self.merge_threads());
        merged.as_any().downcast_ref::<T>().map(f)
    }

    /// Knob aggregates merged across shards (per-kernel sums commute, so
    /// the device-ordered fold is deterministic).
    pub fn merged_knobs(&self) -> crate::knob::KnobSet {
        let mut merged = self.shards[0].lock().knobs.clone();
        for shard in &self.shards[1..] {
            merged.merge_from(&shard.lock().knobs);
        }
        merged
    }

    /// The captured cross-layer stack for `kernel`: shards are consulted
    /// in ascending device order and the first capture wins (one
    /// representative context per kernel, as in the paper).
    pub fn merged_stack_for(&self, kernel: &str) -> Option<CrossLayerStack> {
        self.shards
            .iter()
            .find_map(|s| s.lock().stacks.stack_for(kernel).cloned())
    }
}

/// Quarantine records across `procs` (pass them in ascending device
/// order), deduplicated by tool name — the first shard to quarantine a
/// tool supplies the message.
fn collect_quarantines<'a>(procs: impl Iterator<Item = &'a EventProcessor>) -> Vec<ToolQuarantine> {
    let mut out: Vec<ToolQuarantine> = Vec::new();
    for proc in procs {
        for q in proc.tools.quarantines() {
            if !out.iter().any(|e| e.tool == q.tool) {
                out.push(q.clone());
            }
        }
    }
    out
}

/// Folds every shard's instance of tool `i` into a fresh fork via the
/// shared merge plan ([`crate::merge::tree_reduce`]), ascending device id
/// (the callers pass `procs` in shard order, which is device order).
///
/// Each non-quarantined shard contributes one leaf — a fresh fork of the
/// primary instance with that shard's state merged in — and the leaves
/// tree-reduce pairwise in device order on up to `max_threads` workers.
/// A fork is an identity element for [`Tool::merge`] (empty accumulated
/// state), so the tree's result is byte-identical to the linear
/// `fork ∘ s₀ ∘ s₁ ∘ …` fold this replaces; the tree shape depends only
/// on the shard count, so thread count never changes the bytes (the
/// `tests/concurrency.rs` and `tests/scale_out.rs` suites pin this).
///
/// A shard instance quarantined after a panicking callback is excluded
/// from the fold: its state is memory-safe but potentially inconsistent
/// (the panic interrupted an update), while the surviving shards' state
/// is whole.
// Audited expects: registration lists are uniform across shards by
// construction (every shard is a `fork_all` of one collection), so these
// lookups encode structural invariants, not data-dependent conditions.
#[allow(clippy::expect_used)]
fn merge_tool_index(procs: &[&EventProcessor], i: usize, max_threads: usize) -> Box<dyn Tool> {
    let primary = procs[0].tools.tool_at(i).expect("tool index in range");
    let leaves: Vec<Box<dyn Tool>> = procs
        .iter()
        .filter(|proc| !proc.tools.is_quarantined(i))
        .map(|proc| {
            let mut leaf = primary
                .fork()
                .expect("sharded sessions hold only forkable tools");
            leaf.merge(proc.tools.tool_at(i).expect("same registration"));
            leaf
        })
        .collect();
    crate::merge::tree_reduce(leaves, max_threads, |a, b| a.merge(&*b)).unwrap_or_else(|| {
        // Every shard quarantined this tool: report the empty fork.
        primary
            .fork()
            .expect("sharded sessions hold only forkable tools")
    })
}

/// Merged boxes of every registered tool across `procs` (registration
/// order), scheduled by the shared merge plan. Hubs with more than two
/// shards spend `max_threads` workers (`0` = available parallelism):
/// across tools when there are several ([`crate::merge::reduce_indexed`],
/// each tool's shard tree running whole on one worker), or *within* the
/// shard tree when a single tool spans many shards — the 256-shard,
/// one-tool teardown the scale-out workload produces. Two-shard hubs
/// merge sequentially, exactly as before the pool existed. Either way
/// the bytes match the fully sequential merge — the plan only changes
/// which thread executes a pair, never the pairing order.
fn merge_all_tools(procs: &[&EventProcessor], max_threads: usize) -> Vec<Box<dyn Tool>> {
    let n = procs[0].tools.len();
    let workers = if procs.len() > 2 { max_threads } else { 1 };
    if n == 1 {
        return vec![merge_tool_index(procs, 0, workers)];
    }
    crate::merge::reduce_indexed(n, workers, |i| merge_tool_index(procs, i, 1))
}

/// Drains the sink's per-class spill buffers into a processor whose lock
/// the caller already holds: access events first, control events second,
/// each class through one dispatch-row lookup.
fn drain_buffers(
    access_buf: &mut Vec<Event>,
    control_buf: &mut Vec<Event>,
    processor: &mut EventProcessor,
) {
    if !access_buf.is_empty() {
        processor.process_class_batch(EventClass::DeviceAccess, access_buf);
        access_buf.clear();
    }
    if !control_buf.is_empty() {
        processor.process_class_batch(EventClass::DeviceControl, control_buf);
        control_buf.clear();
    }
}

/// Per-launch admission decisions, computed once at kernel begin.
#[derive(Debug, Clone, Copy)]
struct LaunchGate {
    launch: LaunchId,
    /// Device the launch runs on. Per-lane engines number launches
    /// independently, so launch ids alone can collide across devices —
    /// the gate must never answer for another device's launch.
    device: DeviceId,
    /// Probe configuration the shard returned for this launch.
    config: ProbeConfig,
    /// Some tool subscribed to [`EventClass::DeviceAccess`].
    access_tools: bool,
    /// Some tool subscribed to [`EventClass::DeviceControl`].
    control_tools: bool,
}

impl LaunchGate {
    fn for_launch(ctx: &TraceCtx, config: ProbeConfig, processor: &EventProcessor) -> Self {
        LaunchGate {
            launch: ctx.launch,
            device: ctx.device,
            config,
            access_tools: processor.class_wanted(EventClass::DeviceAccess),
            control_tools: processor.class_wanted(EventClass::DeviceControl),
        }
    }

    fn wants_batches(&self) -> bool {
        self.access_tools && (self.config.global_accesses || self.config.shared_accesses)
    }

    fn wants_barriers(&self) -> bool {
        self.control_tools && self.config.barriers
    }

    fn wants_blocks(&self) -> bool {
        self.control_tools && self.config.block_boundaries
    }

    fn wants_instructions(&self) -> bool {
        self.control_tools
    }
}

/// The device-trace sink that feeds fine-grained events into the hub.
///
/// A sink binds to its launch's device shard at kernel begin; everything
/// it buffers reaches that shard. Per-device profilers (one per parallel
/// lane) therefore emit into disjoint shards and never contend.
///
/// In the default [`SpineMode::Ring`] the sink owns one SPSC
/// [`EventRing`] per device it has visited: spills *push* onto the
/// bound device's ring and return, leaving tool dispatch to the shard
/// side. A full ring (or an empty buffer pool) triggers the lossless
/// backpressure path — the sink takes the shard lock, which drains every
/// pending ring (its own older messages first), and processes the
/// overflow inline. [`SpineMode::Inline`] reproduces the pre-spine
/// behaviour: spills drain under the shard lock on the emission path.
/// Both modes cut batches at identical stream offsets and deliver the
/// identical event sequence to the shard's processor, which is what the
/// ring-vs-inline byte-identity suites pin.
#[derive(Debug)]
pub struct HubSink {
    hub: SharedHub,
    mode: SpineMode,
    config: SpineConfig,
    /// [`EventClass::DeviceAccess`] spill buffer (emission order).
    access_buf: Vec<Event>,
    /// [`EventClass::DeviceControl`] spill buffer (emission order).
    control_buf: Vec<Event>,
    gate: Option<LaunchGate>,
    /// Device whose shard the buffered events belong to.
    bound: DeviceId,
    /// Ring per visited device (ring mode; lazily created and registered
    /// with the device's shard). Sinks visit at most a handful of
    /// devices, so a linear scan beats a map here.
    rings: Vec<(DeviceId, Arc<EventRing>)>,
}

impl HubSink {
    /// Creates a sink feeding `hub` over the default ring spine.
    pub fn new(hub: SharedHub) -> Self {
        Self::with_spine(hub, SpineMode::Ring, SpineConfig::default())
    }

    /// Creates a sink that drains under the shard lock on the emission
    /// path — the pre-spine reference used by differential tests and the
    /// bench decompositions.
    pub fn inline_spine(hub: SharedHub) -> Self {
        Self::with_spine(hub, SpineMode::Inline, SpineConfig::default())
    }

    /// Creates a sink with an explicit spine mode and ring geometry
    /// (tests shrink the geometry to force wraparound and backpressure).
    pub fn with_spine(hub: SharedHub, mode: SpineMode, config: SpineConfig) -> Self {
        let batch = config.batch_events.max(1);
        HubSink {
            hub,
            mode,
            config,
            access_buf: Vec::with_capacity(batch),
            control_buf: Vec::with_capacity(batch),
            gate: None,
            bound: DeviceId(0),
            rings: Vec::new(),
        }
    }

    /// Events currently buffered (not yet visible to any processor).
    pub fn buffered(&self) -> usize {
        self.access_buf.len() + self.control_buf.len()
    }

    /// Hands the spill buffers to the bound shard: access events first,
    /// control events second, each class through one dispatch-row
    /// lookup. Ring mode pushes the buffers onto the spine (visible at
    /// the shard's next drain); inline mode processes them under the
    /// shard lock before returning.
    pub fn flush(&mut self) {
        if self.access_buf.is_empty() && self.control_buf.is_empty() {
            return;
        }
        match self.mode {
            SpineMode::Ring => {
                self.spill_class(EventClass::DeviceAccess);
                self.spill_class(EventClass::DeviceControl);
            }
            SpineMode::Inline => {
                let mut processor = self.hub.lock_device(self.bound);
                drain_buffers(&mut self.access_buf, &mut self.control_buf, &mut processor);
            }
        }
    }

    /// The ring feeding `device`'s shard, created and registered on
    /// first use.
    fn ensure_ring(&mut self, device: DeviceId) -> Arc<EventRing> {
        if let Some((_, ring)) = self.rings.iter().find(|(d, _)| *d == device) {
            return Arc::clone(ring);
        }
        let ring = Arc::new(EventRing::with_config(&self.config));
        self.hub.shard_for(device).register_ring(Arc::clone(&ring));
        self.rings.push((device, Arc::clone(&ring)));
        ring
    }

    /// Pushes `msg` onto `ring`, applying lossless backpressure on a full
    /// ring: take the shard lock (the drain-first acquisition empties
    /// every pending ring — this sink's older messages first, so per-ring
    /// FIFO holds) and process the overflow inline as the consumer.
    fn ring_send(&self, ring: &EventRing, msg: SpineMsg) {
        if let Err(msg) = ring.push(msg) {
            let mut processor = self.hub.shard_for(self.bound).lock();
            match msg {
                SpineMsg::One(event) => processor.process(&event),
                SpineMsg::Batch(class, events) => {
                    processor.process_class_batch(class, &events);
                    // Still holding the shard lock: recycling is a
                    // consumer-role operation on the free ring.
                    ring.recycle(events);
                }
            }
        }
    }

    /// A replacement spill buffer: recycled from the free ring when the
    /// consumer returned one; otherwise the pool is dry (the shard has
    /// not drained yet), so self-drain — the lossless backpressure path
    /// recycles every in-flight buffer — and retry. Allocation is the
    /// cold last resort (e.g. shrunken test geometries).
    fn take_or_reclaim_buffer(&self, ring: &EventRing) -> Vec<Event> {
        if let Some(buf) = ring.take_buffer() {
            return buf;
        }
        drop(self.hub.shard_for(self.bound).lock());
        ring.take_buffer()
            .unwrap_or_else(|| Vec::with_capacity(self.config.batch_events.max(1)))
    }

    /// Ring mode: moves one class's spill buffer onto the bound ring,
    /// installing a recycled buffer in its place.
    fn spill_class(&mut self, class: EventClass) {
        let is_empty = match class {
            EventClass::DeviceAccess => self.access_buf.is_empty(),
            _ => self.control_buf.is_empty(),
        };
        if is_empty {
            return;
        }
        let ring = self.ensure_ring(self.bound);
        let replacement = self.take_or_reclaim_buffer(&ring);
        let full = match class {
            EventClass::DeviceAccess => std::mem::replace(&mut self.access_buf, replacement),
            _ => std::mem::replace(&mut self.control_buf, replacement),
        };
        self.ring_send(&ring, SpineMsg::Batch(class, full));
    }

    /// Ring mode: sends a single out-of-band event (launch markers) on
    /// the bound ring.
    fn send_one(&mut self, event: Event) {
        let ring = self.ensure_ring(self.bound);
        self.ring_send(&ring, SpineMsg::One(event));
    }

    fn push_access(&mut self, event: Event) {
        self.access_buf.push(event);
        if self.access_buf.len() >= self.config.batch_events.max(1) {
            self.flush();
        }
    }

    fn push_control(&mut self, event: Event) {
        self.control_buf.push(event);
        if self.control_buf.len() >= self.config.batch_events.max(1) {
            self.flush();
        }
    }

    /// The gate for `ctx`'s launch, recomputed under the shard lock only
    /// when a callback arrives out of band (no preceding
    /// `on_kernel_begin`). The raw (non-draining) lock suffices: probe
    /// configs depend only on tool interests and region state, and
    /// region events arrive on the host path, which drains synchronously.
    fn gate_for(&mut self, ctx: &TraceCtx) -> LaunchGate {
        match self.gate {
            Some(gate) if gate.launch == ctx.launch && gate.device == ctx.device => gate,
            _ => {
                self.rebind(ctx.device);
                let processor = self.hub.shard_for(ctx.device).lock_raw();
                let config = processor.probe_config_for(ctx.launch);
                let gate = LaunchGate::for_launch(ctx, config, &processor);
                drop(processor);
                self.gate = Some(gate);
                gate
            }
        }
    }

    /// Points the sink at `device`'s shard, handing anything buffered to
    /// the previously bound shard first. Events of a launch whose kernel
    /// end never arrived therefore stay attributed to the *old* device's
    /// shard — the device they were emitted on — never silently re-routed
    /// to the new one (pinned by the leftover-drain regression tests).
    fn rebind(&mut self, device: DeviceId) {
        if self.bound != device {
            self.flush();
            self.bound = device;
        }
    }
}

impl Drop for HubSink {
    /// Lossless teardown: partial spill buffers are handed to the spine
    /// (ring mode) or drained (inline mode) so harvest-time drains still
    /// observe them — the salvaged-report path for sinks dropped by a
    /// panicked lane. During a panic unwind only the lock-free pushes
    /// run: taking the shard lock could execute tool code mid-unwind.
    fn drop(&mut self) {
        match self.mode {
            SpineMode::Ring => {
                if std::thread::panicking() {
                    if let Some((_, ring)) = self.rings.iter().find(|(d, _)| *d == self.bound) {
                        let access = std::mem::take(&mut self.access_buf);
                        if !access.is_empty() {
                            let _ = ring.push(SpineMsg::Batch(EventClass::DeviceAccess, access));
                        }
                        let control = std::mem::take(&mut self.control_buf);
                        if !control.is_empty() {
                            let _ = ring.push(SpineMsg::Batch(EventClass::DeviceControl, control));
                        }
                    }
                } else {
                    self.flush();
                }
                for (_, ring) in &self.rings {
                    ring.close();
                }
            }
            SpineMode::Inline => {
                if !std::thread::panicking() {
                    self.flush();
                }
            }
        }
    }
}

impl DeviceTraceSink for HubSink {
    fn on_kernel_begin(&mut self, ctx: &TraceCtx) -> ProbeConfig {
        self.rebind(ctx.device);
        if self.mode == SpineMode::Ring {
            // Leftovers from a launch whose end never reached us precede
            // this launch's begin on the ring, preserving cross-launch
            // order; the gate then reads through the raw lock (probe
            // configs never depend on spine-carried state).
            self.flush();
            self.send_one(Event::KernelLaunchBegin {
                launch: ctx.launch,
                device: ctx.device,
                stream: ctx.stream,
                name: ctx.name.clone(),
                grid: ctx.grid,
                block: ctx.block,
            });
            let processor = self.hub.shard_for(ctx.device).lock_raw();
            let config = processor.probe_config_for(ctx.launch);
            let gate = LaunchGate::for_launch(ctx, config, &processor);
            drop(processor);
            self.gate = Some(gate);
            return config;
        }
        let mut processor = self.hub.lock_device(ctx.device);
        // Leftovers from a launch whose end never reached us drain first so
        // cross-launch ordering is preserved.
        drain_buffers(&mut self.access_buf, &mut self.control_buf, &mut processor);
        let config = processor.probe_config_for(ctx.launch);
        processor.process(&Event::KernelLaunchBegin {
            launch: ctx.launch,
            device: ctx.device,
            stream: ctx.stream,
            name: ctx.name.clone(),
            grid: ctx.grid,
            block: ctx.block,
        });
        let gate = LaunchGate::for_launch(ctx, config, &processor);
        drop(processor);
        self.gate = Some(gate);
        config
    }

    fn on_batch(&mut self, ctx: &TraceCtx, batch: &AccessBatch) {
        if !self.gate_for(ctx).wants_batches() {
            return; // no lock taken, no event constructed
        }
        let event = match batch.space {
            MemSpace::Shared | MemSpace::RemoteShared => Event::SharedAccess {
                launch: ctx.launch,
                kernel: ctx.name.clone(),
                batch: batch.clone(),
            },
            _ => Event::GlobalAccess {
                launch: ctx.launch,
                kernel: ctx.name.clone(),
                batch: batch.clone(),
            },
        };
        self.push_access(event);
    }

    fn on_barriers(&mut self, ctx: &TraceCtx, count: u64) {
        if !self.gate_for(ctx).wants_barriers() {
            return;
        }
        self.push_control(Event::Barrier {
            launch: ctx.launch,
            count,
            cluster: false,
        });
    }

    fn on_blocks(&mut self, ctx: &TraceCtx, count: u64) {
        if !self.gate_for(ctx).wants_blocks() {
            return;
        }
        self.push_control(Event::BlockBoundary {
            launch: ctx.launch,
            count,
        });
    }

    fn on_instructions(&mut self, ctx: &TraceCtx, count: u64) {
        if !self.gate_for(ctx).wants_instructions() {
            return;
        }
        self.push_control(Event::Instructions {
            launch: ctx.launch,
            count,
        });
    }

    fn on_kernel_end(&mut self, ctx: &TraceCtx, summary: &KernelTraceSummary) {
        // The launch's buffered events precede its trace summary, which
        // always flows (the knob aggregates feed on it even when no tool
        // subscribed). Ring mode takes no lock here at all in the common
        // case: spill + push and the emitter is done with the launch.
        self.rebind(ctx.device);
        let trace = Event::KernelTrace {
            launch: ctx.launch,
            kernel: ctx.name.clone(),
            summary: summary.clone(),
        };
        if self.mode == SpineMode::Ring {
            self.flush();
            self.send_one(trace);
        } else {
            let mut processor = self.hub.lock_device(ctx.device);
            drain_buffers(&mut self.access_buf, &mut self.control_buf, &mut processor);
            processor.process(&trace);
        }
        self.gate = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{AccessKind, AccessPattern, DeviceId, Dim3, LaunchId, Symbol};

    fn ctx() -> TraceCtx {
        ctx_on(0)
    }

    fn ctx_on(device: u32) -> TraceCtx {
        TraceCtx {
            launch: LaunchId(7 + u64::from(device)),
            device: DeviceId(device),
            stream: 0,
            name: "gemm".into(),
            grid: Dim3::linear(8),
            block: Dim3::linear(128),
        }
    }

    fn batch(space: MemSpace) -> AccessBatch {
        AccessBatch {
            launch: LaunchId(7),
            spec_index: 0,
            base: 0x1000,
            len: 4096,
            records: 32,
            bytes: 4096,
            elem_size: 4,
            kind: AccessKind::Load,
            space,
            pattern: AccessPattern::Sequential,
        }
    }

    #[derive(Default)]
    struct SpaceCounter {
        global: u64,
        shared: u64,
    }
    impl crate::tool::Tool for SpaceCounter {
        fn name(&self) -> &str {
            "spaces"
        }
        fn interest(&self) -> crate::tool::Interest {
            crate::tool::Interest::all()
        }
        fn on_event(&mut self, event: &Event) {
            match event {
                Event::GlobalAccess { .. } => self.global += 1,
                Event::SharedAccess { .. } => self.shared += 1,
                _ => {}
            }
        }
        fn fork(&self) -> Option<Box<dyn Tool>> {
            Some(Box::<SpaceCounter>::default())
        }
        fn merge(&mut self, other: &dyn Tool) {
            let other = other.as_any().downcast_ref::<SpaceCounter>().unwrap();
            self.global += other.global;
            self.shared += other.shared;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn space_counter_processor() -> EventProcessor {
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<SpaceCounter>::default());
        processor
    }

    #[test]
    fn sink_routes_batches_by_space() {
        let hub = new_shared(space_counter_processor());
        let mut sink = HubSink::new(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        assert!(config.global_accesses);
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        sink.on_batch(&ctx(), &batch(MemSpace::Shared));
        sink.on_batch(&ctx(), &batch(MemSpace::RemoteShared));
        sink.on_kernel_end(&ctx(), &KernelTraceSummary::default());
        let (g, s) = hub
            .primary()
            .tools
            .with_tool_mut("spaces", |t: &mut SpaceCounter| (t.global, t.shared))
            .unwrap();
        assert_eq!(g, 1);
        assert_eq!(s, 2);
    }

    #[test]
    fn kernel_begin_emits_event_and_config() {
        let hub = new_shared(EventProcessor::new());
        let mut sink = HubSink::new(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        // No tools registered: nothing to instrument.
        assert!(config.is_disabled());
        assert_eq!(hub.events_processed(), 1);
    }

    #[test]
    fn disabled_config_short_circuits_batches() {
        // Regression (ISSUE 2 satellite): a launch whose ProbeConfig came
        // back disabled must not construct or deliver batch events — the
        // seed cloned `batch` and `ctx.name` before asking anyone.
        let hub = new_shared(EventProcessor::new()); // no tools → disabled
        let mut sink = HubSink::new(Arc::clone(&hub));
        let config = sink.on_kernel_begin(&ctx());
        assert!(config.is_disabled());
        for _ in 0..100 {
            sink.on_batch(&ctx(), &batch(MemSpace::Global));
            sink.on_barriers(&ctx(), 8);
            sink.on_instructions(&ctx(), 1_000);
        }
        assert_eq!(sink.buffered(), 0, "gated events are never buffered");
        // Only the KernelLaunchBegin event reached the processor.
        assert_eq!(hub.events_processed(), 1);
    }

    #[test]
    fn coarse_tools_never_see_device_batches() {
        // Per-class gating: a coarse-interest tool must not cause batch
        // events to be constructed, even though its interest is non-empty.
        let mut processor = EventProcessor::new();
        processor
            .tools
            .register(Box::<crate::tool::LaunchCounter>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        sink.on_kernel_begin(&ctx());
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        sink.on_barriers(&ctx(), 8);
        assert_eq!(sink.buffered(), 0);
        sink.on_kernel_end(&ctx(), &KernelTraceSummary::default());
        // KernelLaunchBegin + KernelTrace only.
        assert_eq!(hub.events_processed(), 2);
    }

    #[test]
    fn buffered_events_flush_at_kernel_end_in_class_major_order() {
        #[derive(Default)]
        struct OrderProbe {
            classes: Vec<EventClass>,
        }
        impl crate::tool::Tool for OrderProbe {
            fn name(&self) -> &str {
                "order"
            }
            fn interest(&self) -> crate::tool::Interest {
                crate::tool::Interest::all()
            }
            fn on_event(&mut self, event: &Event) {
                self.classes.push(event.class());
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<OrderProbe>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        sink.on_kernel_begin(&ctx());
        sink.on_barriers(&ctx(), 4);
        sink.on_batch(&ctx(), &batch(MemSpace::Global));
        assert!(sink.buffered() > 0, "fine events buffer until a flush");
        assert_eq!(hub.events_processed(), 1, "only KernelLaunchBegin so far");
        sink.on_kernel_end(&ctx(), &KernelTraceSummary::default());
        assert_eq!(sink.buffered(), 0);
        let classes = hub
            .primary()
            .tools
            .with_tool_mut("order", |t: &mut OrderProbe| t.classes.clone())
            .unwrap();
        // The flush drains class-major: every buffered DeviceAccess event
        // of the window, then the DeviceControl events, then KernelTrace —
        // even though the barrier was emitted before the batch.
        assert_eq!(
            classes,
            vec![
                EventClass::Kernel,        // KernelLaunchBegin
                EventClass::DeviceAccess,  // GlobalAccess
                EventClass::DeviceControl, // Barrier
                EventClass::DeviceControl, // KernelTrace
            ]
        );
    }

    #[test]
    fn full_buffer_flushes_mid_launch() {
        // Both spine modes spill at the same stream offset; the buffered
        // tail is invisible to the processor until the next flush point.
        let flush_events = SpineConfig::default().batch_events;
        for mode in [SpineMode::Ring, SpineMode::Inline] {
            let hub = new_shared(space_counter_processor());
            let mut sink = HubSink::with_spine(Arc::clone(&hub), mode, SpineConfig::default());
            sink.on_kernel_begin(&ctx());
            for _ in 0..(flush_events + 10) {
                sink.on_batch(&ctx(), &batch(MemSpace::Global));
            }
            assert_eq!(sink.buffered(), 10, "one full buffer spilled mid-launch");
            assert_eq!(
                hub.events_processed() as usize,
                1 + flush_events,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn event_names_share_one_interned_allocation_per_launch() {
        // The ISSUE-2 acceptance check: zero per-event String allocations —
        // every event of a launch carries the *same* Arc<str>.
        #[derive(Default)]
        struct NameCollector {
            names: Vec<Symbol>,
        }
        impl crate::tool::Tool for NameCollector {
            fn name(&self) -> &str {
                "names"
            }
            fn interest(&self) -> crate::tool::Interest {
                crate::tool::Interest::all()
            }
            fn on_event(&mut self, event: &Event) {
                match event {
                    Event::KernelLaunchBegin { name, .. } => self.names.push(name.clone()),
                    Event::GlobalAccess { kernel, .. }
                    | Event::SharedAccess { kernel, .. }
                    | Event::KernelTrace { kernel, .. } => self.names.push(kernel.clone()),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut processor = EventProcessor::new();
        processor.tools.register(Box::<NameCollector>::default());
        let hub = new_shared(processor);
        let mut sink = HubSink::new(Arc::clone(&hub));
        let ctx = ctx();
        sink.on_kernel_begin(&ctx);
        for _ in 0..8 {
            sink.on_batch(&ctx, &batch(MemSpace::Global));
            sink.on_batch(&ctx, &batch(MemSpace::Shared));
        }
        sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
        let names = hub
            .primary()
            .tools
            .with_tool_mut("names", |t: &mut NameCollector| t.names.clone())
            .unwrap();
        assert_eq!(names.len(), 1 + 16 + 1);
        for n in &names {
            assert!(
                Symbol::ptr_eq(n, &names[0]),
                "every event shares the launch's single interned name"
            );
        }
    }

    fn sharded_hub(n: u32) -> SharedHub {
        let primary = space_counter_processor();
        let shards: Vec<(DeviceId, EventProcessor)> = (0..n)
            .map(|d| {
                let p = if d == 0 {
                    space_counter_processor()
                } else {
                    primary.fork().expect("SpaceCounter forks")
                };
                (DeviceId(d), p)
            })
            .collect();
        Arc::new(Hub::sharded(shards).unwrap())
    }

    #[test]
    fn sharded_hub_rejects_duplicate_devices() {
        let err = Hub::sharded(vec![
            (DeviceId(0), EventProcessor::new()),
            (DeviceId(1), EventProcessor::new()),
            (DeviceId(0), EventProcessor::new()),
        ])
        .unwrap_err();
        assert!(err.contains("duplicate device gpu0"), "unhelpful: {err}");
        assert!(Hub::sharded(vec![]).is_err(), "empty shard list rejected");
    }

    #[test]
    fn events_route_to_their_device_shard() {
        let hub = sharded_hub(2);
        assert!(hub.is_sharded());
        let mut sink = HubSink::new(Arc::clone(&hub));
        // One launch per device through the same sink.
        for d in 0..2 {
            let ctx = ctx_on(d);
            sink.on_kernel_begin(&ctx);
            sink.on_batch(&ctx, &batch(MemSpace::Global));
            if d == 1 {
                sink.on_batch(&ctx, &batch(MemSpace::Shared));
            }
            sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
        }
        let per_shard: Vec<(u64, u64)> = hub
            .shards()
            .iter()
            .map(|s| {
                s.lock()
                    .tools
                    .with_tool_mut("spaces", |t: &mut SpaceCounter| (t.global, t.shared))
                    .unwrap()
            })
            .collect();
        assert_eq!(per_shard, vec![(1, 0), (1, 1)], "disjoint per-device state");
        // Host events with a device route by content.
        hub.process(&Event::KernelLaunchEnd {
            launch: LaunchId(99),
            device: DeviceId(1),
            name: "gemm".into(),
            start: accel_sim::SimTime(0),
            end: accel_sim::SimTime(10),
        });
        // Only device 1's shard saw the timed launch (KernelTrace entries
        // from the sink loop above never bump `calls`).
        assert_eq!(
            hub.shard_for(DeviceId(1))
                .lock()
                .knobs
                .get("gemm")
                .unwrap()
                .calls,
            1
        );
        assert_eq!(
            hub.shard_for(DeviceId(0))
                .lock()
                .knobs
                .get("gemm")
                .unwrap()
                .calls,
            0
        );
    }

    #[test]
    fn rebind_leftovers_attribute_to_old_shard() {
        // Regression (ISSUE 8 satellite): when a launch's kernel-end never
        // arrives (lost trace, crashed lane) and the sink rebinds to a new
        // device, the events still buffered for the orphaned launch must
        // flush to the *old* device's shard — they were observed there.
        // Silently re-routing them to the new shard would corrupt both
        // devices' per-shard state. Pinned for both spine modes.
        for mode in [SpineMode::Ring, SpineMode::Inline] {
            let hub = sharded_hub(2);
            let mut sink = HubSink::with_spine(Arc::clone(&hub), mode, SpineConfig::default());
            let orphan = ctx_on(0);
            sink.on_kernel_begin(&orphan);
            sink.on_batch(&orphan, &batch(MemSpace::Global));
            sink.on_batch(&orphan, &batch(MemSpace::Shared));
            assert!(sink.buffered() > 0, "leftovers pending at rebind time");
            // No on_kernel_end for the orphan: the next launch (device 1)
            // triggers the rebind path's leftover flush.
            let next = ctx_on(1);
            sink.on_kernel_begin(&next);
            sink.on_kernel_end(&next, &KernelTraceSummary::default());
            let per_shard: Vec<(u64, u64)> = hub
                .shards()
                .iter()
                .map(|s| {
                    s.lock()
                        .tools
                        .with_tool_mut("spaces", |t: &mut SpaceCounter| (t.global, t.shared))
                        .unwrap()
                })
                .collect();
            assert_eq!(
                per_shard,
                vec![(1, 1), (0, 0)],
                "{mode:?}: orphaned launch's events belong to gpu0's shard"
            );
        }
    }

    #[test]
    fn merged_report_folds_shards_deterministically_and_repeatably() {
        let hub = sharded_hub(2);
        let mut sink = HubSink::new(Arc::clone(&hub));
        for d in 0..2 {
            let ctx = ctx_on(d);
            sink.on_kernel_begin(&ctx);
            for _ in 0..=d {
                sink.on_batch(&ctx, &batch(MemSpace::Global));
            }
            sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
        }
        let merged = hub.merged_report();
        assert_eq!(merged.per_device.len(), 2);
        assert_eq!(merged.per_device[0].0, DeviceId(0));
        assert_eq!(merged.per_device[1].0, DeviceId(1));
        let total = hub
            .with_merged_tool("spaces", |t: &SpaceCounter| t.global)
            .unwrap();
        assert_eq!(total, 3, "1 batch on gpu0 + 2 on gpu1");
        // The merge is non-destructive: repeating it yields the same bytes.
        assert_eq!(merged, hub.merged_report());
        // Per-shard instances were not consumed by merging.
        assert_eq!(
            hub.shards()[0]
                .lock()
                .tools
                .with_tool_mut("spaces", |t: &mut SpaceCounter| t.global),
            Some(1)
        );
    }

    #[test]
    fn region_annotations_gate_launches_on_every_shard() {
        // Regression (ISSUE 3 review): a `pasta.start()` region opened
        // while device 0 is current must also admit launches on device 1
        // — pre-sharding, one processor observed region events globally.
        let shards: Vec<(DeviceId, EventProcessor)> = (0..2)
            .map(|d| {
                let mut p = space_counter_processor();
                p.range = crate::range::RangeFilter::annotated_regions();
                (DeviceId(d), p)
            })
            .collect();
        let hub = Arc::new(Hub::sharded(shards).unwrap());
        assert!(
            hub.lock_device(DeviceId(1))
                .probe_config_for(LaunchId(0))
                .is_disabled(),
            "outside any region, both shards gate"
        );
        hub.process(&Event::RegionStart {
            label: "train".into(),
            device: DeviceId(0),
        });
        for d in 0..2 {
            assert!(
                !hub.lock_device(DeviceId(d))
                    .probe_config_for(LaunchId(1))
                    .is_disabled(),
                "region opened on gpu0 admits launches on gpu{d}"
            );
        }
        // Only the home shard dispatched the annotation event itself.
        assert_eq!(hub.shards()[0].lock().events_processed(), 1);
        assert_eq!(hub.shards()[1].lock().events_processed(), 0);
        hub.process(&Event::RegionEnd {
            label: "train".into(),
            device: DeviceId(1),
        });
        for d in 0..2 {
            assert!(
                hub.lock_device(DeviceId(d))
                    .probe_config_for(LaunchId(2))
                    .is_disabled(),
                "region closed from gpu1 gates gpu{d} again"
            );
        }
    }

    #[test]
    fn pooled_merge_is_byte_identical_to_sequential() {
        // Sessions with >2 shards run the shared merge plan (tree
        // reduction scheduled across workers). The plan never reorders a
        // fold's device order, so the merged report must be byte-identical
        // to the fully sequential merge.
        let mut shards: Vec<(DeviceId, EventProcessor)> = Vec::new();
        for d in 0..4u32 {
            let mut p = EventProcessor::new();
            // Three tools so the pool actually distributes work (the hub
            // merges by registration index, so names play no role here).
            p.tools.register(Box::<SpaceCounter>::default());
            p.tools
                .register(Box::<crate::tool::LaunchCounter>::default());
            p.tools
                .register(Box::<crate::tool::LaunchCounter>::default());
            (0..=d).for_each(|i| {
                p.process(&Event::KernelLaunchEnd {
                    launch: LaunchId(u64::from(i)),
                    device: DeviceId(d),
                    name: "gemm".into(),
                    start: accel_sim::SimTime(0),
                    end: accel_sim::SimTime(10),
                });
            });
            shards.push((DeviceId(d), p));
        }
        let hub = Arc::new(Hub::sharded(shards).unwrap());
        assert!(hub.shards().len() > 2, "pooled path engages above 2 shards");

        // Sequential reference: the same fold, one tool at a time on this
        // thread.
        let guards: Vec<_> = hub.shards().iter().map(DeviceShard::lock).collect();
        let procs: Vec<&EventProcessor> = guards.iter().map(|g| &**g).collect();
        let sequential: Vec<crate::report::ToolReport> = (0..procs[0].tools.len())
            .map(|i| merge_tool_index(&procs, i, 1).report())
            .collect();
        drop(guards);

        let pooled = hub.merged_report();
        assert_eq!(pooled.tools, sequential, "pool must not change the bytes");
        // Repeatable, and stable across repeated pooled runs.
        assert_eq!(pooled, hub.merged_report());
        assert_eq!(pooled.tools, hub.merged_reports());
    }

    #[test]
    fn merged_knobs_sum_across_shards() {
        let hub = sharded_hub(2);
        for d in 0..2u32 {
            hub.process(&Event::KernelLaunchEnd {
                launch: LaunchId(u64::from(d)),
                device: DeviceId(d),
                name: "gemm".into(),
                start: accel_sim::SimTime(0),
                end: accel_sim::SimTime(100),
            });
        }
        let knobs = hub.merged_knobs();
        assert_eq!(knobs.get("gemm").unwrap().calls, 2);
        assert_eq!(knobs.get("gemm").unwrap().duration_ns, 200);
    }
}
