//! The session-end merge plan: deterministic pairwise tree reduction.
//!
//! Every harvest path in the session folds per-device state — tool forks
//! across hub shards, forked [`UvmManager`]s from parallel lanes — into
//! one value. Until the scale-out rework each of those folds was a
//! *linear* chain in ascending device id: `acc ∘ s0 ∘ s1 ∘ … ∘ sN-1`,
//! an O(N) critical path that dominates session teardown at 64+ shards.
//!
//! This module is the one merge plan all of them share now:
//!
//! * [`tree_reduce`] — pairwise binary tree reduction over a list whose
//!   order the caller fixed (ascending device id everywhere in this
//!   codebase). Round *r* merges adjacent pairs `(0,1), (2,3), …` of the
//!   previous round's survivors, left absorbing right, so for an
//!   associative, order-respecting merge the result is byte-identical to
//!   the linear fold — which is exactly the property the byte-identity
//!   suites (`tests/concurrency.rs`, `tests/uvm_parallelism.rs`,
//!   `tests/spine.rs`, `tests/scale_out.rs`) pin. The tree's *shape* is a
//!   function of the input length alone, never of thread count: worker
//!   counts only change which thread executes a pair, so any
//!   `max_threads` produces the same bytes.
//! * [`linear_reduce`] — the sequential left fold, kept as the reference
//!   the tests and the `scale_out` bench compare against.
//! * [`reduce_indexed`] — the plan's scheduling half for *independent*
//!   reductions (one per registered tool): runs `f(0..n)` on up to
//!   `max_threads` scoped workers, chunked contiguously so results stay
//!   in index order.
//!
//! All worker threads the plan spawns are named `merge-{k}` so panic
//! payloads and debugger output attribute to the merge stage.
//!
//! Critical-path arithmetic (the `BENCH_scale_out.json` model): a linear
//! fold of N shards is `(N-1)·M` for per-merge cost M. The tree performs
//! the same `N-1` merges but round *r* runs its `N/2^r` pairs
//! concurrently, so with W workers the critical path is
//! `Σ_r ceil(pairs_r / W) · M` — `≈ (N/W + log₂N)·M`, an
//! `(N-1) / (N/W + log₂N)` speedup (4.5x at N=64, W=8).
//!
//! [`UvmManager`]: uvm_sim::UvmManager

use accel_sim::resolve_threads;

/// Sequential left fold in input order: `items[0] ∘ items[1] ∘ …` —
/// the linear-chain reference [`tree_reduce`] is measured against.
/// Returns `None` for an empty input.
pub fn linear_reduce<T>(items: Vec<T>, merge: impl Fn(&mut T, T)) -> Option<T> {
    let mut it = items.into_iter();
    let mut acc = it.next()?;
    for item in it {
        merge(&mut acc, item);
    }
    Some(acc)
}

/// Pairwise binary tree reduction in input order, executed on up to
/// `max_threads` scoped worker threads per round (`0` = available
/// parallelism; workers are named `merge-{k}`).
///
/// Each round merges adjacent pairs of the previous round's survivors —
/// `merge(&mut left, right)` — and an odd tail element survives to the
/// next round unmerged, so element order is preserved all the way up.
/// For an associative `merge` the result equals [`linear_reduce`] of the
/// same list; the tree shape depends only on `items.len()`, so thread
/// count never changes the bytes. Returns `None` for an empty input.
///
/// A panicking `merge` propagates out of the scope join, exactly like
/// the pre-existing scoped fold it replaces.
pub fn tree_reduce<T: Send>(
    mut items: Vec<T>,
    max_threads: usize,
    merge: impl Fn(&mut T, T) + Sync,
) -> Option<T> {
    let merge = &merge;
    while items.len() > 1 {
        let mut pairs: Vec<(T, Option<T>)> = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(left) = it.next() {
            pairs.push((left, it.next()));
        }
        let workers = resolve_threads(max_threads).min(pairs.len());
        if workers <= 1 {
            for (left, right) in &mut pairs {
                if let Some(right) = right.take() {
                    merge(left, right);
                }
            }
        } else {
            let chunk = pairs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (k, slice) in pairs.chunks_mut(chunk).enumerate() {
                    // Audited expect: thread spawning fails only on
                    // resource exhaustion, where the unnamed
                    // `Scope::spawn` this replaces would panic too.
                    #[allow(clippy::expect_used)]
                    std::thread::Builder::new()
                        .name(format!("merge-{k}"))
                        .spawn_scoped(scope, move || {
                            for (left, right) in slice {
                                if let Some(right) = right.take() {
                                    merge(left, right);
                                }
                            }
                        })
                        .expect("spawn merge worker");
                }
            });
        }
        items = pairs.into_iter().map(|(left, _)| left).collect();
    }
    items.pop()
}

/// Runs the independent reductions `f(0), …, f(n-1)` on up to
/// `max_threads` scoped workers (`0` = available parallelism, workers
/// named `merge-{k}`), returning results in index order. Indices are
/// chunked contiguously, so each reduction runs whole on one thread —
/// the scheduler behind the per-tool shard folds, where tools are
/// independent of each other but each tool's fold must stay ordered.
pub fn reduce_indexed<T: Send>(
    n: usize,
    max_threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = resolve_threads(max_threads).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (k, slots) in out.chunks_mut(chunk).enumerate() {
            let base = k * chunk;
            // Audited expect: see `tree_reduce` — same failure mode as
            // the unnamed `Scope::spawn` this replaces.
            #[allow(clippy::expect_used)]
            std::thread::Builder::new()
                .name(format!("merge-{k}"))
                .spawn_scoped(scope, move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(base + j));
                    }
                })
                .expect("spawn merge worker");
        }
    });
    out.into_iter()
        .map(|slot| {
            // Audited expect: the chunked loop fills every slot before
            // the scope joins — an empty slot is unreachable.
            #[allow(clippy::expect_used)]
            slot.expect("every index reduced")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(tree_reduce(Vec::<u64>::new(), 4, |a, b| *a += b), None);
        assert_eq!(tree_reduce(vec![7u64], 4, |a, b| *a += b), Some(7));
        assert_eq!(linear_reduce(Vec::<u64>::new(), |a, b| *a += b), None);
    }

    #[test]
    fn tree_matches_linear_for_ordered_concat() {
        // String concat is associative but NOT commutative — exactly the
        // shape of the device-ordered merges — so this catches any
        // pairing that reorders elements.
        for n in 1..=33 {
            let items: Vec<String> = (0..n).map(|i| format!("[{i}]")).collect();
            let linear = linear_reduce(items.clone(), |a, b| a.push_str(&b));
            for threads in [1, 2, 3, 8] {
                let tree = tree_reduce(items.clone(), threads, |a, b| a.push_str(&b));
                assert_eq!(tree, linear, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn reduce_indexed_preserves_index_order() {
        for threads in [1, 2, 5] {
            let out = reduce_indexed(11, threads, |i| i * i);
            assert_eq!(out, (0..11).map(|i| i * i).collect::<Vec<_>>());
        }
    }
}
