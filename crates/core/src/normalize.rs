//! Vendor-event normalization.
//!
//! The paper (§III-G) calls out that "some runtimes report memory
//! deallocation sizes with opposite signs or as deltas" and that naming
//! conventions differ; PASTA "unifies semantically equivalent events and
//! exposes a consistent interface". These functions are that layer: one
//! per vendor, mapping raw callbacks to [`Event`]s.

use crate::event::Event;
use accel_sim::Symbol;
use dl_framework::callbacks::FrameworkEvent;
use vendor_amd::RocCallback;
use vendor_nv::NvCallback;

/// Strips the vendor prefix off an API symbol: `cudaMalloc`/`hipMalloc` →
/// `malloc`, `cuLaunchKernel`/`hipLaunchKernel` → `launch_kernel`.
pub fn normalize_api_name(raw: &str) -> String {
    let stripped = raw
        .strip_prefix("cuda")
        .or_else(|| raw.strip_prefix("hip"))
        .or_else(|| raw.strip_prefix("cu"))
        .unwrap_or(raw);
    // CamelCase → snake_case.
    let mut out = String::with_capacity(stripped.len() + 4);
    for (i, c) in stripped.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Interned form of [`normalize_api_name`] — what the event constructors
/// use, so repeated calls to the same API share one allocation.
fn intern_api_name(raw: &str) -> Symbol {
    Symbol::intern(&normalize_api_name(raw))
}

/// True when the API symbol is a *driver*-level entry point (`cu*` on
/// NVIDIA); everything else is runtime-level.
fn is_driver_api(raw: &str) -> bool {
    raw.starts_with("cu") && !raw.starts_with("cuda")
}

/// Normalizes one NVIDIA host callback. Returns `None` for events the
/// unified model covers elsewhere (e.g. `LaunchBegin`, which the fine
/// event path reports with more detail).
pub fn normalize_nv(cb: &NvCallback) -> Option<Event> {
    Some(match cb {
        NvCallback::ApiEnter { name, device, at } => {
            if is_driver_api(name) {
                Event::DriverApi {
                    name: intern_api_name(name),
                    device: *device,
                    at: *at,
                }
            } else {
                Event::RuntimeApi {
                    name: intern_api_name(name),
                    device: *device,
                    at: *at,
                }
            }
        }
        NvCallback::ApiExit { .. } => return None,
        NvCallback::LaunchBegin { .. } => return None, // device path reports it
        NvCallback::LaunchEnd { .. } => return None,   // merged into KernelLaunchEnd upstream
        NvCallback::MemoryAlloc {
            device,
            addr,
            bytes,
            managed,
            at,
        } => Event::ResourceAlloc {
            device: *device,
            addr: *addr,
            bytes: *bytes,
            managed: *managed,
            at: *at,
        },
        NvCallback::MemoryFree {
            device,
            addr,
            bytes,
            at,
        } => Event::ResourceFree {
            device: *device,
            addr: *addr,
            bytes: *bytes,
            at: *at,
        },
        NvCallback::Memcpy {
            device,
            direction,
            bytes,
            at,
        } => Event::MemCopy {
            device: *device,
            direction: *direction,
            bytes: *bytes,
            at: *at,
        },
        NvCallback::Memset {
            device,
            addr,
            bytes,
            at,
        } => Event::MemSet {
            device: *device,
            addr: *addr,
            bytes: *bytes,
            at: *at,
        },
        NvCallback::Synchronize { device, at } => Event::Sync {
            device: *device,
            at: *at,
        },
        NvCallback::BatchMemOp {
            device,
            op,
            addr,
            bytes,
            at,
        } => Event::BatchMemOp {
            device: *device,
            op: normalize_batch_op(op),
            addr: *addr,
            bytes: *bytes,
            at: *at,
        },
        NvCallback::UvmFault {
            launch,
            device,
            groups,
            migrated_bytes,
            evicted_bytes,
            stall_ns,
            at,
        } => Event::UvmFault {
            launch: *launch,
            device: *device,
            groups: *groups,
            migrated_bytes: *migrated_bytes,
            evicted_bytes: *evicted_bytes,
            stall_ns: *stall_ns,
            at: *at,
        },
        NvCallback::PeerMigrate {
            launch,
            src,
            dst,
            duplicated_pages,
            invalidated_pages,
            bytes,
            stall_ns,
            at,
        } => Event::UvmPeerMigrate {
            launch: *launch,
            src: *src,
            dst: *dst,
            duplicated_pages: *duplicated_pages,
            invalidated_pages: *invalidated_pages,
            bytes: *bytes,
            stall_ns: *stall_ns,
            at: *at,
        },
    })
}

/// Normalizes one AMD host callback. The signed `MemoryDelta` becomes
/// either `ResourceAlloc` or `ResourceFree` with positive bytes.
pub fn normalize_roc(cb: &RocCallback) -> Option<Event> {
    Some(match cb {
        RocCallback::ApiEnter { name, device, at } => Event::RuntimeApi {
            name: intern_api_name(name),
            device: *device,
            at: *at,
        },
        RocCallback::ApiExit { .. } => return None,
        RocCallback::KernelDispatch { .. } => return None, // device path
        RocCallback::KernelComplete { .. } => return None,
        RocCallback::MemoryDelta {
            device,
            addr,
            delta,
            managed,
            at,
        } => {
            if *delta >= 0 {
                Event::ResourceAlloc {
                    device: *device,
                    addr: *addr,
                    bytes: *delta as u64,
                    managed: *managed,
                    at: *at,
                }
            } else {
                Event::ResourceFree {
                    device: *device,
                    addr: *addr,
                    bytes: delta.unsigned_abs(),
                    at: *at,
                }
            }
        }
        RocCallback::MemoryCopy {
            device,
            direction,
            bytes,
            at,
        } => Event::MemCopy {
            device: *device,
            direction: *direction,
            bytes: *bytes,
            at: *at,
        },
        RocCallback::MemorySet {
            device,
            addr,
            bytes,
            at,
        } => Event::MemSet {
            device: *device,
            addr: *addr,
            bytes: *bytes,
            at: *at,
        },
        RocCallback::Synchronize { device, at } => Event::Sync {
            device: *device,
            at: *at,
        },
        RocCallback::BatchMemOp {
            device,
            op,
            addr,
            bytes,
            at,
        } => Event::BatchMemOp {
            device: *device,
            op: normalize_batch_op(op),
            addr: *addr,
            bytes: *bytes,
            at: *at,
        },
        // ROCm's SVM page-migration vocabulary and CUDA's UVM faults are
        // the same semantic event; both normalize onto `Event::UvmFault`
        // carrying the faulting device.
        RocCallback::PageMigrate {
            launch,
            device,
            groups,
            migrated_bytes,
            evicted_bytes,
            stall_ns,
            at,
        } => Event::UvmFault {
            launch: *launch,
            device: *device,
            groups: *groups,
            migrated_bytes: *migrated_bytes,
            evicted_bytes: *evicted_bytes,
            stall_ns: *stall_ns,
            at: *at,
        },
        // xGMI peer copies and CUDA's UVM peer migrations are the same
        // semantic event; both normalize onto `Event::UvmPeerMigrate`
        // carrying source and destination devices.
        RocCallback::PeerCopy {
            launch,
            src,
            dst,
            duplicated_pages,
            invalidated_pages,
            bytes,
            stall_ns,
            at,
        } => Event::UvmPeerMigrate {
            launch: *launch,
            src: *src,
            dst: *dst,
            duplicated_pages: *duplicated_pages,
            invalidated_pages: *invalidated_pages,
            bytes: *bytes,
            stall_ns: *stall_ns,
            at: *at,
        },
    })
}

fn normalize_batch_op(raw: &str) -> Symbol {
    if raw.contains("Prefetch") {
        Symbol::intern("mem_prefetch")
    } else if raw.contains("Advise") {
        Symbol::intern("mem_advise")
    } else {
        intern_api_name(raw)
    }
}

/// Normalizes a DL-framework event.
pub fn normalize_framework(ev: &FrameworkEvent) -> Event {
    match ev {
        FrameworkEvent::OpStart {
            seq,
            name,
            device,
            py_stack,
        } => Event::OpStart {
            seq: *seq,
            name: Symbol::intern(name),
            device: *device,
            py_stack: py_stack.clone(),
        },
        FrameworkEvent::OpEnd { seq, name, device } => Event::OpEnd {
            seq: *seq,
            name: Symbol::intern(name),
            device: *device,
        },
        FrameworkEvent::TensorAlloc {
            tensor,
            addr,
            bytes,
            allocated_total,
            reserved_total,
            device,
        } => Event::TensorAlloc {
            tensor: *tensor,
            addr: *addr,
            bytes: *bytes,
            allocated_total: *allocated_total,
            reserved_total: *reserved_total,
            device: *device,
        },
        FrameworkEvent::TensorFree {
            tensor,
            addr,
            bytes,
            allocated_total,
            reserved_total,
            device,
        } => Event::TensorFree {
            tensor: *tensor,
            addr: *addr,
            bytes: *bytes,
            allocated_total: *allocated_total,
            reserved_total: *reserved_total,
            device: *device,
        },
        FrameworkEvent::LayerBoundary {
            name,
            index,
            device,
        } => Event::LayerBoundary {
            name: name.clone(),
            index: *index,
            device: *device,
        },
        FrameworkEvent::PassBoundary { pass, device } => Event::PassBoundary {
            pass: *pass,
            device: *device,
        },
        FrameworkEvent::RegionStart { label, device } => Event::RegionStart {
            label: label.clone(),
            device: *device,
        },
        FrameworkEvent::RegionEnd { label, device } => Event::RegionEnd {
            label: label.clone(),
            device: *device,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, SimTime};

    #[test]
    fn api_names_unify_across_vendors() {
        assert_eq!(normalize_api_name("cudaMalloc"), "malloc");
        assert_eq!(normalize_api_name("hipMalloc"), "malloc");
        assert_eq!(normalize_api_name("cudaMemcpy"), "memcpy");
        assert_eq!(normalize_api_name("hipMemcpy"), "memcpy");
        assert_eq!(normalize_api_name("cuLaunchKernel"), "launch_kernel");
        assert_eq!(normalize_api_name("hipLaunchKernel"), "launch_kernel");
        assert_eq!(
            normalize_api_name("cudaDeviceSynchronize"),
            "device_synchronize"
        );
        assert_eq!(
            normalize_api_name("hipDeviceSynchronize"),
            "device_synchronize"
        );
    }

    #[test]
    fn negative_amd_deltas_become_positive_frees() {
        let cb = RocCallback::MemoryDelta {
            device: DeviceId(0),
            addr: 0x100,
            delta: -4096,
            managed: false,
            at: SimTime(5),
        };
        match normalize_roc(&cb) {
            Some(Event::ResourceFree { bytes, addr, .. }) => {
                assert_eq!(bytes, 4096);
                assert_eq!(addr, 0x100);
            }
            other => panic!("expected ResourceFree, got {other:?}"),
        }
    }

    #[test]
    fn positive_amd_deltas_become_allocs() {
        let cb = RocCallback::MemoryDelta {
            device: DeviceId(0),
            addr: 0x200,
            delta: 8192,
            managed: true,
            at: SimTime(5),
        };
        match normalize_roc(&cb) {
            Some(Event::ResourceAlloc { bytes, managed, .. }) => {
                assert_eq!(bytes, 8192);
                assert!(managed);
            }
            other => panic!("expected ResourceAlloc, got {other:?}"),
        }
    }

    #[test]
    fn nv_free_is_already_positive() {
        let cb = NvCallback::MemoryFree {
            device: DeviceId(0),
            addr: 0x300,
            bytes: 100,
            at: SimTime(0),
        };
        match normalize_nv(&cb) {
            Some(Event::ResourceFree { bytes, .. }) => assert_eq!(bytes, 100),
            other => panic!("expected ResourceFree, got {other:?}"),
        }
    }

    #[test]
    fn driver_vs_runtime_split() {
        let driver = NvCallback::ApiEnter {
            name: "cuLaunchKernel",
            device: DeviceId(0),
            at: SimTime(0),
        };
        assert!(matches!(
            normalize_nv(&driver),
            Some(Event::DriverApi { .. })
        ));
        let runtime = NvCallback::ApiEnter {
            name: "cudaMalloc",
            device: DeviceId(0),
            at: SimTime(0),
        };
        assert!(matches!(
            normalize_nv(&runtime),
            Some(Event::RuntimeApi { .. })
        ));
    }

    #[test]
    fn batch_ops_normalize() {
        let cb = NvCallback::BatchMemOp {
            device: DeviceId(0),
            op: "cudaMemPrefetchAsync",
            addr: 0,
            bytes: 64,
            at: SimTime(0),
        };
        match normalize_nv(&cb) {
            Some(Event::BatchMemOp { op, .. }) => assert_eq!(op, "mem_prefetch"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn api_exits_are_dropped() {
        assert!(normalize_nv(&NvCallback::ApiExit {
            name: "cudaMalloc",
            device: DeviceId(0),
            at: SimTime(0)
        })
        .is_none());
        assert!(normalize_roc(&RocCallback::ApiExit {
            name: "hipMalloc",
            device: DeviceId(0),
            at: SimTime(0)
        })
        .is_none());
    }

    #[test]
    fn uvm_activity_unifies_across_vendors() {
        use accel_sim::LaunchId;
        // NVIDIA's UvmFault and AMD's PageMigrate describe the same
        // semantic event; normalization must produce identical Events,
        // each carrying the *faulting* device.
        let nv = normalize_nv(&NvCallback::UvmFault {
            launch: LaunchId(3),
            device: DeviceId(1),
            groups: 2,
            migrated_bytes: 4096,
            evicted_bytes: 1024,
            stall_ns: 777,
            at: SimTime(11),
        })
        .unwrap();
        let roc = normalize_roc(&RocCallback::PageMigrate {
            launch: LaunchId(3),
            device: DeviceId(1),
            groups: 2,
            migrated_bytes: 4096,
            evicted_bytes: 1024,
            stall_ns: 777,
            at: SimTime(11),
        })
        .unwrap();
        assert_eq!(nv, roc);
        assert_eq!(nv.device(), Some(DeviceId(1)), "routes by faulting device");
    }

    #[test]
    fn peer_traffic_unifies_across_vendors_and_routes_by_destination() {
        use accel_sim::LaunchId;
        let nv = normalize_nv(&NvCallback::PeerMigrate {
            launch: LaunchId(5),
            src: DeviceId(0),
            dst: DeviceId(1),
            duplicated_pages: 16,
            invalidated_pages: 0,
            bytes: 1 << 20,
            stall_ns: 321,
            at: SimTime(13),
        })
        .unwrap();
        let roc = normalize_roc(&RocCallback::PeerCopy {
            launch: LaunchId(5),
            src: DeviceId(0),
            dst: DeviceId(1),
            duplicated_pages: 16,
            invalidated_pages: 0,
            bytes: 1 << 20,
            stall_ns: 321,
            at: SimTime(13),
        })
        .unwrap();
        assert_eq!(nv, roc);
        assert_eq!(nv.device(), Some(DeviceId(1)), "routes by destination");
    }

    #[test]
    fn semantically_equivalent_events_unify() {
        // The same logical free through both vendors yields the same Event
        // (modulo timestamps) — the §III-G promise.
        let nv = normalize_nv(&NvCallback::MemoryFree {
            device: DeviceId(0),
            addr: 0xabc,
            bytes: 2048,
            at: SimTime(7),
        })
        .unwrap();
        let roc = normalize_roc(&RocCallback::MemoryDelta {
            device: DeviceId(0),
            addr: 0xabc,
            delta: -2048,
            managed: false,
            at: SimTime(7),
        })
        .unwrap();
        assert_eq!(nv, roc);
    }
}
