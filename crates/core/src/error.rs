//! PASTA error taxonomy.
//!
//! Since the fault-containment rework the session degrades instead of
//! aborting: a panicking lane becomes a typed [`LaneFailure`], surviving
//! lanes still merge and the combination surfaces as
//! [`PastaError::Salvaged`] carrying the salvaged [`MergedReport`]; a
//! panicking tool callback is quarantined ([`ToolQuarantine`]) while the
//! rest of the run proceeds. Every variant preserves its source through
//! [`std::error::Error::source`].

use crate::report::{MergedReport, ToolQuarantine};
use accel_sim::{AccelError, DeviceId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// One contained lane (or workload) panic: which device's lane went down
/// and the rendered panic payload.
///
/// `device` is `None` when the panic could not be attributed to a single
/// lane — e.g. it unwound out of the orchestration closure passed to
/// [`crate::PastaSession::run_parallel`] rather than out of a per-lane
/// thread, or out of a sequential [`crate::Workload`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneFailure {
    /// Device whose lane panicked, when attributable.
    pub device: Option<DeviceId>,
    /// Rendered panic payload (see [`accel_sim::panic_message`]).
    pub payload: String,
}

impl fmt::Display for LaneFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(device) => write!(f, "lane on {device} panicked: {}", self.payload),
            None => write!(f, "workload panicked: {}", self.payload),
        }
    }
}

impl Error for LaneFailure {}

/// A run that failed but was salvaged: the lane failures that occurred
/// plus the merged report assembled from every surviving lane's shard and
/// UVM state at the moment of salvage.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvagedRun {
    /// The contained failures, in detection order.
    pub failures: Vec<LaneFailure>,
    /// Merged report over the surviving lanes (per-lane health rides in
    /// [`MergedReport::lane_failures`]).
    pub report: MergedReport,
}

/// Errors surfaced by the PASTA framework.
#[derive(Debug, Clone, PartialEq)]
pub enum PastaError {
    /// The underlying simulator/runtime failed.
    Accel(AccelError),
    /// A named tool was not found in the collection.
    NoSuchTool(String),
    /// Invalid configuration (builder misuse).
    Config(String),
    /// A lane or workload panicked and the panic was contained at the
    /// session boundary; no salvageable state accompanied it.
    Lane(LaneFailure),
    /// A tool callback panicked; the tool was disarmed for the rest of
    /// the run while its siblings kept running.
    ToolQuarantined(ToolQuarantine),
    /// Lanes failed, but the surviving lanes completed and their state
    /// merged into the carried report (boxed: the salvage payload is much
    /// larger than every other variant).
    Salvaged(Box<SalvagedRun>),
    /// Trace capture or replay failed (rendered `pasta_trace::TraceError`).
    Trace(String),
}

impl fmt::Display for PastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PastaError::Accel(e) => write!(f, "accelerator error: {e}"),
            PastaError::NoSuchTool(n) => write!(f, "no tool named `{n}` is registered"),
            PastaError::Config(m) => write!(f, "invalid configuration: {m}"),
            PastaError::Lane(failure) => write!(f, "{failure}"),
            PastaError::ToolQuarantined(q) => write!(f, "{q}"),
            PastaError::Salvaged(s) => {
                write!(f, "run salvaged after {} lane failure(s)", s.failures.len())?;
                if let Some(first) = s.failures.first() {
                    write!(f, ": {first}")?;
                }
                Ok(())
            }
            PastaError::Trace(m) => write!(f, "trace error: {m}"),
        }
    }
}

impl Error for PastaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PastaError::Accel(e) => Some(e),
            PastaError::Lane(failure) => Some(failure),
            PastaError::ToolQuarantined(q) => Some(q),
            PastaError::Salvaged(s) => s.failures.first().map(|f| f as &(dyn Error + 'static)),
            _ => None,
        }
    }
}

impl From<AccelError> for PastaError {
    fn from(e: AccelError) -> Self {
        match e {
            // A contained lane panic keeps its typed identity through the
            // session layer instead of hiding inside the Accel wrapper.
            AccelError::LanePanic { device, payload } => PastaError::Lane(LaneFailure {
                device: Some(device),
                payload,
            }),
            other => PastaError::Accel(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceId;

    #[test]
    fn displays_and_sources() {
        let e = PastaError::from(AccelError::UnknownDevice(DeviceId(3)));
        assert!(e.to_string().contains("gpu3"));
        assert!(e.source().is_some());
        assert!(PastaError::NoSuchTool("x".into())
            .to_string()
            .contains("`x`"));
        assert!(PastaError::Config("bad".into()).source().is_none());
    }

    #[test]
    fn lane_panic_converts_to_typed_lane_failure() {
        let e = PastaError::from(AccelError::LanePanic {
            device: DeviceId(1),
            payload: "boom".into(),
        });
        let PastaError::Lane(failure) = &e else {
            panic!("LanePanic must surface as PastaError::Lane, got {e:?}");
        };
        assert_eq!(failure.device, Some(DeviceId(1)));
        assert_eq!(failure.payload, "boom");
        assert!(e.to_string().contains("gpu1"));
        assert!(e.source().unwrap().to_string().contains("boom"));
    }

    #[test]
    fn salvaged_display_counts_failures_and_sources_the_first() {
        let s = PastaError::Salvaged(Box::new(SalvagedRun {
            failures: vec![
                LaneFailure {
                    device: Some(DeviceId(1)),
                    payload: "first".into(),
                },
                LaneFailure {
                    device: None,
                    payload: "second".into(),
                },
            ],
            report: MergedReport::default(),
        }));
        let text = s.to_string();
        assert!(text.contains("2 lane failure(s)"), "{text}");
        assert!(text.contains("first"), "{text}");
        assert!(s.source().unwrap().to_string().contains("gpu1"));
    }

    #[test]
    fn unattributed_failure_displays_as_workload_panic() {
        let f = LaneFailure {
            device: None,
            payload: "oops".into(),
        };
        assert_eq!(f.to_string(), "workload panicked: oops");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PastaError>();
    }
}
