//! PASTA error type.

use accel_sim::AccelError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the PASTA framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastaError {
    /// The underlying simulator/runtime failed.
    Accel(AccelError),
    /// A named tool was not found in the collection.
    NoSuchTool(String),
    /// Invalid configuration (builder misuse).
    Config(String),
}

impl fmt::Display for PastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PastaError::Accel(e) => write!(f, "accelerator error: {e}"),
            PastaError::NoSuchTool(n) => write!(f, "no tool named `{n}` is registered"),
            PastaError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl Error for PastaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PastaError::Accel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AccelError> for PastaError {
    fn from(e: AccelError) -> Self {
        PastaError::Accel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceId;

    #[test]
    fn displays_and_sources() {
        let e = PastaError::from(AccelError::UnknownDevice(DeviceId(3)));
        assert!(e.to_string().contains("gpu3"));
        assert!(e.source().is_some());
        assert!(PastaError::NoSuchTool("x".into())
            .to_string()
            .contains("`x`"));
        assert!(PastaError::Config("bad".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PastaError>();
    }
}
