// Fault-containment audit: unwrap/expect on user-reachable paths must be
// converted to `PastaError` or carry an `#[allow]` with a justification.
// Test builds are exempt (asserting via unwrap is idiomatic there).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # pasta-core — the PASTA framework
//!
//! PASTA (Program AnalysiS Tool framework for Accelerators) is the paper's
//! primary contribution: three modular components that turn heterogeneous
//! vendor profiling interfaces and DL-framework callbacks into a single
//! extensible analysis pipeline (paper Fig. 1):
//!
//! 1. **Event handler** ([`handler`], [`normalize`]) — subscribes to the
//!    simulated Compute Sanitizer / NVBit / ROCProfiler host callbacks and
//!    the tensorlite framework callbacks, and normalizes them into the
//!    unified [`Event`] model ([`event`], covering every row of the
//!    paper's Table II). Vendor quirks — AMD's negative release deltas,
//!    `hip*` vs `cuda*` naming, "dispatch" vs "launch" — disappear here.
//! 2. **Event processor** ([`processor`], [`hub`]) — preprocesses and
//!    dispatches events to tools. Fine-grained device events flow through
//!    the vendor profiler's trace sink; whether their *analysis* runs
//!    GPU-resident or on the CPU is the [`AnalysisMode`] choice whose cost
//!    gap Figs. 2/9/10 quantify. Range filtering ([`range`]) and
//!    inefficiency-location knobs ([`knob`], [`callstack`]) live here.
//!    The hot path stays cheap via interned kernel names ([`Symbol`]),
//!    a per-class dispatch table with a sink-side interest gate, and
//!    batched sink→processor flushes (see [`hub`]).
//! 3. **Tool collection** ([`tool`]) — the template ([`Tool`]) users
//!    override. A tool declares its [`Interest`]s; only the event classes
//!    some tool wants are instrumented, which is how PASTA keeps overhead
//!    proportional to the analysis.
//!
//! [`Pasta`] ties it together: a builder that assembles devices, backend,
//! analysis mode, UVM and tools into a [`PastaSession`] that runs models
//! (or custom workloads) and yields tool reports plus the Fig. 10 overhead
//! breakdown.
//!
//! ## Example
//!
//! ```
//! use pasta_core::{Pasta, AnalysisMode};
//! use pasta_core::tool::LaunchCounter;
//! use dl_framework::models::{ModelZoo, RunKind};
//!
//! # fn main() -> Result<(), pasta_core::PastaError> {
//! let mut session = Pasta::builder()
//!     .rtx_3060()
//!     .tool(LaunchCounter::default())
//!     .analysis_mode(AnalysisMode::GpuResident)
//!     .build()?;
//! let report = session.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)?;
//! assert!(report.kernel_launches > 0);
//! let n = session
//!     .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
//!     .expect("tool exists");
//! assert_eq!(n, report.kernel_launches);
//! # Ok(())
//! # }
//! ```

pub mod callstack;
pub mod error;
pub mod event;
pub mod handler;
pub mod hub;
pub mod knob;
pub mod merge;
pub mod normalize;
pub mod processor;
pub mod profiler;
pub mod range;
pub mod report;
pub mod spine;
pub mod tool;
pub mod workload;

// The interner lives in accel-sim (the sink's `TraceCtx` is the first
// place a kernel name enters the pipeline) but is part of PASTA's public
// vocabulary: every name-carrying `Event` field is a `Symbol`.
pub use accel_sim::{AnalysisMode, OverheadBreakdown, Symbol, SymbolTable};
pub use error::{LaneFailure, PastaError, SalvagedRun};
pub use event::{Event, EventClass};
pub use knob::{Knob, KnobSet};
pub use processor::{EventProcessor, EventRecorder};
pub use profiler::{BackendChoice, ParallelConfig, Pasta, PastaBuilder, PastaSession, UvmSetup};
pub use range::RangeFilter;
pub use report::{MergedReport, SessionReport, ToolQuarantine, ToolReport, UvmReport};
pub use spine::{EventRing, SpineConfig, SpineDrainer, SpineMode, SpineMsg};
pub use tool::{Interest, Tool, ToolCollection};
pub use workload::{
    FnWorkload, KernelSweepWorkload, ModelWorkload, Workload, WorkloadCx, WorkloadStats,
};
