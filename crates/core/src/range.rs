//! Range-specific analysis (paper §III-F1).
//!
//! Two mechanisms restrict analysis to a sub-region of the application:
//!
//! * **grid-id windows** — the `START_GRID_ID`/`END_GRID_ID` environment
//!   variables select a half-open window of kernel launch ids;
//! * **annotations** — `pasta.start()`/`pasta.stop()` Python annotations
//!   (delivered as [`Event::RegionStart`]/[`Event::RegionEnd`]) toggle
//!   collection around arbitrary code regions, e.g. a single transformer
//!   layer (the paper's Listing 1).

use crate::event::Event;
use accel_sim::LaunchId;
use serde::{Deserialize, Serialize};

/// Decides which launches/events fall inside the analyzed range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RangeFilter {
    /// First launch id to analyze (`START_GRID_ID`).
    pub start_grid_id: Option<u64>,
    /// One past the last launch id to analyze (`END_GRID_ID`).
    pub end_grid_id: Option<u64>,
    /// When true, analysis only runs inside `pasta.start()`/`pasta.stop()`
    /// regions; when false, annotations are informational only.
    pub annotations_gate: bool,
    /// Current region nesting depth.
    region_depth: u32,
}

impl RangeFilter {
    /// An unrestricted filter.
    pub fn all() -> Self {
        RangeFilter::default()
    }

    /// Restricts to launch ids in `[start, end)`.
    pub fn grid_window(start: u64, end: u64) -> Self {
        RangeFilter {
            start_grid_id: Some(start),
            end_grid_id: Some(end),
            ..RangeFilter::default()
        }
    }

    /// Analyzes only inside user annotations.
    pub fn annotated_regions() -> Self {
        RangeFilter {
            annotations_gate: true,
            ..RangeFilter::default()
        }
    }

    /// Feeds region annotations through the filter (must see every event
    /// stream exactly once).
    pub fn observe(&mut self, event: &Event) {
        match event {
            Event::RegionStart { .. } => self.region_depth += 1,
            Event::RegionEnd { .. } => self.region_depth = self.region_depth.saturating_sub(1),
            _ => {}
        }
    }

    /// True when a launch with this grid id should be instrumented.
    pub fn covers_launch(&self, launch: LaunchId) -> bool {
        let id = launch.value();
        if let Some(s) = self.start_grid_id {
            if id < s {
                return false;
            }
        }
        if let Some(e) = self.end_grid_id {
            if id >= e {
                return false;
            }
        }
        if self.annotations_gate && self.region_depth == 0 {
            return false;
        }
        true
    }

    /// True when currently inside an annotated region.
    pub fn in_region(&self) -> bool {
        self.region_depth > 0
    }

    /// Clears the *observed* state (region nesting) while keeping the
    /// configured window and gating mode. Called by the processor's reset:
    /// configuration belongs to the session, observation to the run.
    pub fn reset_observation(&mut self) {
        self.region_depth = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceId;

    fn region(start: bool) -> Event {
        if start {
            Event::RegionStart {
                label: "r".into(),
                device: DeviceId(0),
            }
        } else {
            Event::RegionEnd {
                label: "r".into(),
                device: DeviceId(0),
            }
        }
    }

    #[test]
    fn unrestricted_covers_everything() {
        let f = RangeFilter::all();
        assert!(f.covers_launch(LaunchId(0)));
        assert!(f.covers_launch(LaunchId(u64::MAX)));
    }

    #[test]
    fn grid_window_is_half_open() {
        let f = RangeFilter::grid_window(10, 20);
        assert!(!f.covers_launch(LaunchId(9)));
        assert!(f.covers_launch(LaunchId(10)));
        assert!(f.covers_launch(LaunchId(19)));
        assert!(!f.covers_launch(LaunchId(20)));
    }

    #[test]
    fn annotation_gating() {
        let mut f = RangeFilter::annotated_regions();
        assert!(!f.covers_launch(LaunchId(1)), "outside any region");
        f.observe(&region(true));
        assert!(f.in_region());
        assert!(f.covers_launch(LaunchId(2)));
        f.observe(&region(false));
        assert!(!f.covers_launch(LaunchId(3)));
    }

    #[test]
    fn nested_regions_close_correctly() {
        let mut f = RangeFilter::annotated_regions();
        f.observe(&region(true));
        f.observe(&region(true));
        f.observe(&region(false));
        assert!(f.covers_launch(LaunchId(1)), "still one level deep");
        f.observe(&region(false));
        assert!(!f.covers_launch(LaunchId(1)));
        // Extra ends never underflow.
        f.observe(&region(false));
        assert!(!f.in_region());
    }

    #[test]
    fn window_and_annotation_combine() {
        let mut f = RangeFilter {
            start_grid_id: Some(5),
            end_grid_id: None,
            annotations_gate: true,
            region_depth: 0,
        };
        f.observe(&region(true));
        assert!(!f.covers_launch(LaunchId(4)), "before the window");
        assert!(f.covers_launch(LaunchId(5)));
    }
}
