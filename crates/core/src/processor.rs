//! The event processor: preprocessing, knob accounting, dispatch.
//!
//! Events from the handler (host + framework) and from the device-trace
//! sink (fine-grained) meet here. The processor maintains the range
//! filter, feeds the knob aggregates, triggers cross-layer stack capture
//! for knob-selected kernels, and dispatches to the tool collection —
//! the "dispatch unit" of the paper's Fig. 1.

use crate::callstack::StackCapture;
use crate::event::{Event, EventClass};
use crate::knob::{Knob, KnobSet};
use crate::range::RangeFilter;
use crate::tool::ToolCollection;
use accel_sim::{LaunchId, ProbeConfig, Symbol};

/// Observes every event a processor counts, in processing order — the
/// capture hook behind binary trace writers (`pasta-trace`).
///
/// A recorder sees exactly the events that bump
/// [`EventProcessor::events_processed`]: everything delivered through
/// [`EventProcessor::process`] and [`EventProcessor::process_class_batch`],
/// and nothing from [`EventProcessor::observe_range`] (range bookkeeping is
/// not part of the dispatched stream). Replaying a recorded stream through
/// a fresh processor therefore reproduces the tool-visible history of the
/// shard exactly.
///
/// `Send + Sync` because processors live inside hub shards shared across
/// lane threads and borrowed by the pooled session-end merge (recording
/// itself only ever happens through `&mut self` under the shard lock, so
/// the bounds cost implementations nothing); `Debug` keeps the processor
/// derivable.
pub trait EventRecorder: Send + Sync + std::fmt::Debug {
    /// Called for each event, before tool dispatch, under the shard lock.
    fn record(&mut self, event: &Event);
}

/// The dispatch-and-preprocess core shared by handler and sink.
#[derive(Debug, Default)]
pub struct EventProcessor {
    /// Registered analysis tools.
    pub tools: ToolCollection,
    /// Range-specific analysis filter.
    pub range: RangeFilter,
    /// Per-kernel aggregates backing the location knobs.
    pub knobs: KnobSet,
    /// Cross-layer stack capture.
    pub stacks: StackCapture,
    /// When set, capture stacks for the kernel this knob currently selects.
    pub capture_knob: Option<Knob>,
    /// Attached trace recorder, if any. With no recorder the event path
    /// pays exactly one `Option` discriminant check.
    recorder: Option<Box<dyn EventRecorder>>,
    events_processed: u64,
}

impl EventProcessor {
    /// An empty processor.
    pub fn new() -> Self {
        EventProcessor::default()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Probe configuration for an upcoming launch: disabled outside the
    /// analysis range, otherwise the union of tool interests.
    pub fn probe_config_for(&self, launch: LaunchId) -> ProbeConfig {
        if !self.range.covers_launch(launch) {
            return ProbeConfig::disabled();
        }
        self.tools.interest().probe_config()
    }

    /// True when some registered tool subscribes to `class` — the O(1)
    /// answer the sink's interest gate consults when deciding whether a
    /// fine-grained event is worth constructing at all.
    pub fn class_wanted(&self, class: EventClass) -> bool {
        self.tools.wants_class(class)
    }

    /// Attaches a trace recorder; replaces any previous one.
    pub fn set_recorder(&mut self, recorder: Box<dyn EventRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the trace recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<Box<dyn EventRecorder>> {
        self.recorder.take()
    }

    /// True when a trace recorder is attached.
    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Preprocesses and dispatches one event.
    pub fn process(&mut self, event: &Event) {
        if let Some(recorder) = &mut self.recorder {
            recorder.record(event);
        }
        self.events_processed += 1;
        self.range.observe(event);
        self.stacks.observe(event);
        match event {
            Event::KernelLaunchEnd {
                name, start, end, ..
            } => {
                self.knobs.record_launch(name, *end - *start);
                self.maybe_capture(name);
            }
            Event::KernelTrace {
                kernel, summary, ..
            } => {
                self.knobs.record_trace(
                    kernel,
                    summary.global_records + summary.shared_records,
                    summary.global_bytes,
                    summary.barriers,
                );
                self.maybe_capture(kernel);
            }
            _ => {}
        }
        self.tools.dispatch(event);
    }

    /// Processes a buffered slice of events under one borrow — the drain
    /// half of the sink's batched flush (one hub lock per flush instead of
    /// one per event).
    pub fn process_batch(&mut self, events: &[Event]) {
        for event in events {
            self.process(event);
        }
    }

    /// Drains a slice of *same-class* fine-grained events (the sink's
    /// per-class spill buffers). The buffered classes — access batches,
    /// barriers, block boundaries, instruction counts — never feed the
    /// range filter, the knob aggregates or stack capture (those react to
    /// kernel/framework/annotation events, which flow through
    /// [`EventProcessor::process`] directly), so the drain skips both the
    /// per-event preprocessing and the per-event class match: one
    /// dispatch-row lookup covers the whole slice.
    pub fn process_class_batch(&mut self, class: EventClass, events: &[Event]) {
        debug_assert!(
            matches!(class, EventClass::DeviceAccess | EventClass::DeviceControl),
            "only launch-scoped fine-grained classes may take the fast drain"
        );
        if let Some(recorder) = &mut self.recorder {
            for event in events {
                recorder.record(event);
            }
        }
        self.events_processed += events.len() as u64;
        self.tools.dispatch_class_batch(class, events);
    }

    /// Feeds one region annotation into the range filter *without*
    /// dispatching it — how the hub keeps every shard's analysis-range
    /// observation in sync while the event's home shard alone delivers it
    /// to tools.
    pub fn observe_range(&mut self, event: &Event) {
        self.range.observe(event);
    }

    /// A state-empty processor for another device shard: same registered
    /// tool set (via [`crate::tool::Tool::fork`]), same range
    /// configuration and capture knob, fresh accumulators. `None` when
    /// some tool declines to fork (the session then keeps one shared
    /// shard).
    pub fn fork(&self) -> Option<EventProcessor> {
        // A fork never inherits the recorder: each trace stream belongs to
        // exactly one shard, and capture attachment is the hub's job.
        Some(EventProcessor {
            tools: self.tools.fork_all()?,
            range: self.range.clone(),
            knobs: KnobSet::new(),
            stacks: StackCapture::new(),
            capture_knob: self.capture_knob,
            recorder: None,
            events_processed: 0,
        })
    }

    /// Captures the stack when `kernel` is what the capture knob currently
    /// selects — this is how PASTA avoids "capturing full context
    /// information for all runtime events" (§III-F2).
    fn maybe_capture(&mut self, kernel: &Symbol) {
        let Some(knob) = self.capture_knob else {
            return;
        };
        let selected = self
            .knobs
            .select(knob)
            .is_some_and(|(selected, _)| selected == kernel);
        if selected {
            self.stacks.capture_for_kernel(kernel);
        }
    }

    /// Resets all accumulated state (tools keep their registration).
    ///
    /// The range filter's *configuration* (grid window, annotation gating)
    /// survives — it is session setup, not accumulated state — but its
    /// *observed* region nesting is cleared: a reset mid-region must not
    /// leave the next run looking permanently "inside" a region whose end
    /// event it will never see.
    pub fn reset(&mut self) {
        self.tools.reset();
        self.knobs.reset();
        self.stacks.reset();
        self.range.reset_observation();
        self.events_processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::LaunchCounter;
    use accel_sim::{DeviceId, SimTime};

    fn launch_end(name: &str, launch: u64) -> Event {
        Event::KernelLaunchEnd {
            launch: LaunchId(launch),
            device: DeviceId(0),
            name: name.into(),
            start: SimTime(0),
            end: SimTime(100),
        }
    }

    #[test]
    fn processing_feeds_knobs_and_tools() {
        let mut p = EventProcessor::new();
        p.tools.register(Box::<LaunchCounter>::default());
        p.process(&launch_end("gemm", 0));
        p.process(&launch_end("gemm", 1));
        p.process(&launch_end("relu", 2));
        assert_eq!(p.events_processed(), 3);
        assert_eq!(p.knobs.select(Knob::MaxCalledKernel).unwrap().0, "gemm");
        let n = p
            .tools
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn capture_knob_snapshots_hot_kernel() {
        let mut p = EventProcessor::new();
        p.capture_knob = Some(Knob::MaxCalledKernel);
        p.process(&launch_end("gemm", 0));
        assert!(p.stacks.stack_for("gemm").is_some());
        p.process(&launch_end("relu", 1));
        // relu ties at 1 call but gemm captured first and stays captured.
        assert!(p.stacks.captured_count() >= 1);
    }

    #[test]
    fn probe_config_respects_range() {
        let mut p = EventProcessor::new();
        struct DeviceHungry;
        impl crate::tool::Tool for DeviceHungry {
            fn name(&self) -> &str {
                "hungry"
            }
            fn interest(&self) -> crate::tool::Interest {
                crate::tool::Interest::all()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        p.tools.register(Box::new(DeviceHungry));
        p.range = RangeFilter::grid_window(10, 20);
        assert!(p.probe_config_for(LaunchId(5)).is_disabled());
        assert!(p.probe_config_for(LaunchId(15)).global_accesses);
    }

    #[derive(Debug, Default, Clone)]
    struct CountingRecorder {
        seen: std::sync::Arc<parking_lot::Mutex<Vec<Event>>>,
    }
    impl EventRecorder for CountingRecorder {
        fn record(&mut self, event: &Event) {
            self.seen.lock().push(event.clone());
        }
    }

    #[test]
    fn recorder_sees_exactly_the_counted_events() {
        let mut p = EventProcessor::new();
        assert!(!p.has_recorder());
        let recorder = CountingRecorder::default();
        let seen = std::sync::Arc::clone(&recorder.seen);
        p.set_recorder(Box::new(recorder));
        assert!(p.has_recorder());
        p.process(&launch_end("gemm", 0));
        let barriers = [Event::Barrier {
            launch: LaunchId(0),
            count: 4,
            cluster: false,
        }];
        p.process_class_batch(EventClass::DeviceControl, &barriers);
        // Range observation is bookkeeping, not dispatch: never recorded.
        p.observe_range(&Event::RegionStart {
            label: "r".into(),
            device: DeviceId(0),
        });
        assert!(p.take_recorder().is_some());
        assert!(!p.has_recorder());
        let seen = seen.lock();
        assert_eq!(seen.len() as u64, p.events_processed());
        assert_eq!(seen.len(), 2);
        assert!(matches!(seen[1], Event::Barrier { .. }));
    }

    #[test]
    fn fork_never_inherits_the_recorder() {
        let mut p = EventProcessor::new();
        p.set_recorder(Box::<CountingRecorder>::default());
        let forked = p.fork().expect("empty tool set forks");
        assert!(!forked.has_recorder(), "streams belong to one shard each");
        assert!(p.has_recorder(), "the original keeps recording");
    }

    #[test]
    fn reset_clears_state() {
        let mut p = EventProcessor::new();
        p.process(&launch_end("k", 0));
        p.reset();
        assert_eq!(p.events_processed(), 0);
        assert_eq!(p.knobs.kernel_count(), 0);
    }

    #[test]
    fn reset_clears_range_observation_but_keeps_configuration() {
        // Pins the ISSUE-2 satellite decision: `reset` drops the *observed*
        // region nesting (a reset mid-region must not leave the session
        // permanently "inside" a region) while the configured gating mode
        // and grid window — session setup — survive.
        let mut p = EventProcessor::new();
        p.range = RangeFilter::annotated_regions();
        p.process(&Event::RegionStart {
            label: "layer".into(),
            device: DeviceId(0),
        });
        assert!(p.range.in_region());
        assert!(p.probe_config_for(LaunchId(0)).is_disabled() || p.tools.is_empty());
        p.reset();
        assert!(!p.range.in_region(), "observed nesting cleared");
        assert!(
            p.range.annotations_gate,
            "configured gating mode survives reset"
        );
        assert!(
            !p.range.covers_launch(LaunchId(1)),
            "post-reset launches are outside any region again"
        );

        let mut p = EventProcessor::new();
        p.range = RangeFilter::grid_window(10, 20);
        p.process(&launch_end("k", 15));
        p.reset();
        assert!(
            !p.range.covers_launch(LaunchId(5)) && p.range.covers_launch(LaunchId(15)),
            "configured grid window survives reset"
        );
    }
}
