//! Cross-layer call-stack capture (paper §III-F2, Fig. 4).
//!
//! PASTA captures Python-level stacks via the CPython frame API and native
//! stacks via libbacktrace; the expensive part is doing so for *every*
//! event, so the knobs pick one kernel and this module captures the joined
//! stack only for launches of that kernel.

use crate::event::Event;
use accel_sim::Symbol;
use dl_framework::pycall::{native_frames_for_kernel, CrossLayerStack, PyFrame};
use std::collections::HashMap;

/// Tracks the live Python stack (from `OpStart` events) and snapshots a
/// cross-layer stack per kernel of interest.
#[derive(Debug, Default)]
pub struct StackCapture {
    /// Python stack attached to the most recent operator start.
    current_py: Vec<PyFrame>,
    /// Captured stacks keyed by kernel symbol (first capture wins, as in
    /// the paper: one representative context per kernel).
    captured: HashMap<Symbol, CrossLayerStack>,
}

impl StackCapture {
    /// An empty capture.
    pub fn new() -> Self {
        StackCapture::default()
    }

    /// Observes the event stream (needs `OpStart` events flowing).
    pub fn observe(&mut self, event: &Event) {
        if let Event::OpStart { py_stack, name, .. } = event {
            self.current_py = py_stack.clone();
            // The operator itself becomes the innermost Python-side frame,
            // mirroring how torch displays `aten::` ops under module code.
            self.current_py
                .push(PyFrame::new("torch/_ops.py", 502, name.as_str()));
        }
    }

    /// Captures the cross-layer stack for `kernel` if not already present.
    pub fn capture_for_kernel(&mut self, kernel: &Symbol) {
        if self.captured.contains_key(kernel.as_str()) {
            return;
        }
        let stack = CrossLayerStack {
            python: self.current_py.clone(),
            native: native_frames_for_kernel(kernel),
        };
        self.captured.insert(kernel.clone(), stack);
    }

    /// The captured stack for `kernel`, if any.
    pub fn stack_for(&self, kernel: &str) -> Option<&CrossLayerStack> {
        self.captured.get(kernel)
    }

    /// Number of kernels with captured stacks.
    pub fn captured_count(&self) -> usize {
        self.captured.len()
    }

    /// Clears all captures.
    pub fn reset(&mut self) {
        self.current_py.clear();
        self.captured.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceId;

    fn op_start(name: &str, stack: Vec<PyFrame>) -> Event {
        Event::OpStart {
            seq: 0,
            name: name.into(),
            device: DeviceId(0),
            py_stack: stack,
        }
    }

    #[test]
    fn capture_joins_python_and_native() {
        let mut sc = StackCapture::new();
        sc.observe(&op_start(
            "aten::linear",
            vec![
                PyFrame::new("models/bert/run_bert.py", 177, "<module>"),
                PyFrame::new("models/bert/run_bert.py", 146, "test_bert"),
                PyFrame::new("torch/nn/modules/linear.py", 114, "forward"),
            ],
        ));
        sc.capture_for_kernel(&Symbol::intern("ampere_sgemm_128x64_tn"));
        let stack = sc.stack_for("ampere_sgemm_128x64_tn").unwrap();
        assert_eq!(stack.python.len(), 4, "3 user frames + the aten op");
        assert!(stack
            .native
            .iter()
            .any(|f| f.symbol.contains("gemm_and_bias")));
        let rendered = stack.render();
        assert!(rendered.contains("run_bert.py:177"));
        assert!(rendered.contains("CUDABlas.cpp"));
    }

    #[test]
    fn first_capture_wins() {
        let mut sc = StackCapture::new();
        sc.observe(&op_start("aten::a", vec![PyFrame::new("a.py", 1, "fa")]));
        sc.capture_for_kernel(&Symbol::intern("k"));
        sc.observe(&op_start("aten::b", vec![PyFrame::new("b.py", 2, "fb")]));
        sc.capture_for_kernel(&Symbol::intern("k"));
        let stack = sc.stack_for("k").unwrap();
        assert!(stack.python.iter().any(|f| f.file == "a.py"));
        assert_eq!(sc.captured_count(), 1);
    }

    #[test]
    fn reset_clears() {
        let mut sc = StackCapture::new();
        sc.capture_for_kernel(&Symbol::intern("k"));
        assert_eq!(sc.captured_count(), 1);
        sc.reset();
        assert_eq!(sc.captured_count(), 0);
        assert!(sc.stack_for("k").is_none());
    }
}
