//! Inefficiency-location knobs (paper §III-F2).
//!
//! Knobs select *which* kernel deserves expensive context capture:
//! `MAX_MEM_REFERENCED_KERNEL` picks the kernel with the most memory
//! references, `MAX_CALLED_KERNEL` the most frequently invoked one. Users
//! extend the mechanism with custom knobs — here, any function scoring a
//! kernel's aggregate statistics.

use accel_sim::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate per-kernel statistics the knobs score.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelAggregate {
    /// Invocations.
    pub calls: u64,
    /// Warp-level memory-access records.
    pub memory_records: u64,
    /// Bytes moved through global memory.
    pub bytes: u64,
    /// Barrier executions.
    pub barriers: u64,
    /// Total device-time, ns.
    pub duration_ns: u64,
}

/// A built-in or custom kernel-selection knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Knob {
    /// The paper's `MAX_MEM_REFERENCED_KERNEL`.
    MaxMemReferencedKernel,
    /// The paper's `MAX_CALLED_KERNEL`.
    MaxCalledKernel,
    /// Most barrier executions (a §III-H extension example).
    MaxBarrierKernel,
    /// Longest cumulative device time.
    MaxDurationKernel,
}

impl Knob {
    /// Environment-variable style name.
    pub fn env_name(self) -> &'static str {
        match self {
            Knob::MaxMemReferencedKernel => "MAX_MEM_REFERENCED_KERNEL",
            Knob::MaxCalledKernel => "MAX_CALLED_KERNEL",
            Knob::MaxBarrierKernel => "MAX_BARRIER_KERNEL",
            Knob::MaxDurationKernel => "MAX_DURATION_KERNEL",
        }
    }

    fn score(self, agg: &KernelAggregate) -> u64 {
        match self {
            Knob::MaxMemReferencedKernel => agg.memory_records,
            Knob::MaxCalledKernel => agg.calls,
            Knob::MaxBarrierKernel => agg.barriers,
            Knob::MaxDurationKernel => agg.duration_ns,
        }
    }
}

/// Accumulates per-kernel aggregates and answers knob queries.
#[derive(Debug, Default, Clone)]
pub struct KnobSet {
    per_kernel: HashMap<Symbol, KernelAggregate>,
}

impl KnobSet {
    /// An empty set.
    pub fn new() -> Self {
        KnobSet::default()
    }

    /// Records one launch completion. The interned key makes this an
    /// allocation-free hash-map update (and a pointer compare on the fast
    /// path of probing).
    pub fn record_launch(&mut self, kernel: &Symbol, duration_ns: u64) {
        let agg = self.per_kernel.entry(kernel.clone()).or_default();
        agg.calls += 1;
        agg.duration_ns += duration_ns;
    }

    /// Records fine-grained counters for a kernel.
    pub fn record_trace(
        &mut self,
        kernel: &Symbol,
        memory_records: u64,
        bytes: u64,
        barriers: u64,
    ) {
        let agg = self.per_kernel.entry(kernel.clone()).or_default();
        agg.memory_records += memory_records;
        agg.bytes += bytes;
        agg.barriers += barriers;
    }

    /// The kernel selected by `knob`, with its aggregate.
    pub fn select(&self, knob: Knob) -> Option<(&Symbol, KernelAggregate)> {
        self.per_kernel
            .iter()
            .max_by_key(|(name, agg)| (knob.score(agg), std::cmp::Reverse(name.as_str())))
            .map(|(n, a)| (n, *a))
    }

    /// Custom knob: the kernel maximizing an arbitrary score.
    pub fn select_by<F: Fn(&KernelAggregate) -> u64>(
        &self,
        score: F,
    ) -> Option<(&Symbol, KernelAggregate)> {
        self.per_kernel
            .iter()
            .max_by_key(|(name, agg)| (score(agg), std::cmp::Reverse(name.as_str())))
            .map(|(n, a)| (n, *a))
    }

    /// Folds another set's aggregates into this one (the sharded hub's
    /// knob merge: per-kernel counters are sums, so the fold commutes and
    /// the device-ordered merge is deterministic).
    pub fn merge_from(&mut self, other: &KnobSet) {
        for (kernel, theirs) in &other.per_kernel {
            let agg = self.per_kernel.entry(kernel.clone()).or_default();
            agg.calls += theirs.calls;
            agg.memory_records += theirs.memory_records;
            agg.bytes += theirs.bytes;
            agg.barriers += theirs.barriers;
            agg.duration_ns += theirs.duration_ns;
        }
    }

    /// Aggregate for one kernel.
    pub fn get(&self, kernel: &str) -> Option<KernelAggregate> {
        self.per_kernel.get(kernel).copied()
    }

    /// Number of distinct kernels seen.
    pub fn kernel_count(&self) -> usize {
        self.per_kernel.len()
    }

    /// Clears all aggregates.
    pub fn reset(&mut self) {
        self.per_kernel.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> KnobSet {
        let mut k = KnobSet::new();
        let gemm = Symbol::intern("gemm");
        let im2col = Symbol::intern("im2col");
        k.record_launch(&gemm, 100);
        k.record_launch(&gemm, 100);
        k.record_launch(&im2col, 500);
        k.record_trace(&gemm, 1_000, 64_000, 10);
        k.record_trace(&im2col, 5_000, 320_000, 0);
        k
    }

    #[test]
    fn max_called_picks_gemm() {
        let k = set();
        let (name, agg) = k.select(Knob::MaxCalledKernel).unwrap();
        assert_eq!(name, "gemm");
        assert_eq!(agg.calls, 2);
    }

    #[test]
    fn max_mem_referenced_picks_im2col() {
        let k = set();
        let (name, agg) = k.select(Knob::MaxMemReferencedKernel).unwrap();
        assert_eq!(name, "im2col");
        assert_eq!(agg.memory_records, 5_000);
    }

    #[test]
    fn duration_and_barrier_knobs() {
        let k = set();
        assert_eq!(k.select(Knob::MaxDurationKernel).unwrap().0, "im2col");
        assert_eq!(k.select(Knob::MaxBarrierKernel).unwrap().0, "gemm");
    }

    #[test]
    fn custom_knob() {
        let k = set();
        // Bytes-per-call: im2col moves 320k in one call.
        let (name, _) = k
            .select_by(|agg| agg.bytes.checked_div(agg.calls).unwrap_or(0))
            .unwrap();
        assert_eq!(name, "im2col");
    }

    #[test]
    fn empty_set_selects_nothing() {
        assert!(KnobSet::new().select(Knob::MaxCalledKernel).is_none());
    }

    #[test]
    fn env_names_match_paper() {
        assert_eq!(
            Knob::MaxMemReferencedKernel.env_name(),
            "MAX_MEM_REFERENCED_KERNEL"
        );
        assert_eq!(Knob::MaxCalledKernel.env_name(), "MAX_CALLED_KERNEL");
    }

    #[test]
    fn reset_clears() {
        let mut k = set();
        assert!(k.kernel_count() > 0);
        k.reset();
        assert_eq!(k.kernel_count(), 0);
    }
}
