//! The extensible workload layer: what a [`crate::PastaSession`] runs.
//!
//! The paper frames PASTA as *one* pipeline over heterogeneous profiling
//! backends; the session API mirrors that by profiling anything that
//! implements the object-safe [`Workload`] trait instead of hardcoding
//! the six zoo models. A workload receives a [`WorkloadCx`] — the
//! instrumented [`Session`] (every allocation, operator and launch it
//! performs flows through the event pipeline to the registered tools),
//! plus access to the device runtimes and the attached UVM manager — and
//! returns [`WorkloadStats`] that the session folds into its
//! [`crate::SessionReport`].
//!
//! Three implementations ship in-tree:
//!
//! * [`ModelWorkload`] — the Table IV model-zoo path every figure and
//!   bench uses ([`crate::PastaSession::run_model`] forwards here);
//! * [`KernelSweepWorkload`] — raw [`KernelDesc`] launches straight at
//!   the engine, for custom-kernel and microbenchmark profiling the
//!   model zoo cannot express;
//! * [`FnWorkload`] — a closure adapter for one-off scenarios.

use crate::error::PastaError;
use accel_sim::{KernelDesc, LaunchRecord};
use dl_framework::models::{ModelZoo, RunKind};
use dl_framework::parallel::DeviceLane;
use dl_framework::runner::{self, RunReport};
use dl_framework::session::Session;
use uvm_sim::UvmManager;

/// Everything a [`Workload`] may touch while it runs.
///
/// Dereferences to the instrumented [`Session`], so tensor allocation,
/// operator bracketing, kernel launches and region annotations are all
/// available directly: `cx.alloc_tensor(..)`, `cx.launch(..)`,
/// `cx.region_start(..)`, …
pub struct WorkloadCx<'a, 'rt> {
    session: &'a mut Session<'rt>,
}

impl<'a, 'rt> WorkloadCx<'a, 'rt> {
    pub(crate) fn new(session: &'a mut Session<'rt>) -> Self {
        WorkloadCx { session }
    }

    /// Wraps one parallel lane's session, giving per-lane code inside
    /// [`crate::PastaSession::run_parallel`] the same instrumented
    /// surface a [`Workload`] gets — including [`WorkloadCx::uvm`] /
    /// [`WorkloadCx::uvm_mut`] access to the lane's *own* forked UVM
    /// manager (each lane carries a private fork of the session manager,
    /// so touching it from the lane's thread contends on nothing).
    pub fn for_lane(lane: &'a mut DeviceLane<'rt>) -> Self {
        WorkloadCx {
            session: &mut lane.session,
        }
    }

    /// The instrumented framework session.
    pub fn session(&mut self) -> &mut Session<'rt> {
        self.session
    }

    /// Launches a raw kernel on the current device, counted against the
    /// session like any framework-issued launch.
    ///
    /// # Errors
    ///
    /// Propagates launch validation failures.
    pub fn launch_kernel(&mut self, desc: KernelDesc) -> Result<LaunchRecord, PastaError> {
        self.session.launch(desc).map_err(PastaError::from)
    }

    /// The attached UVM manager, when the session was built with
    /// [`crate::UvmSetup`].
    pub fn uvm(&self) -> Option<&UvmManager> {
        self.session
            .runtime()
            .residency()
            .and_then(|r| r.as_any().downcast_ref())
    }

    /// Mutable access to the attached UVM manager.
    pub fn uvm_mut(&mut self) -> Option<&mut UvmManager> {
        self.session
            .runtime_mut()
            .residency_mut()
            .and_then(|r| r.as_any_mut().downcast_mut())
    }
}

impl<'rt> std::ops::Deref for WorkloadCx<'_, 'rt> {
    type Target = Session<'rt>;
    fn deref(&self) -> &Session<'rt> {
        self.session
    }
}

impl<'rt> std::ops::DerefMut for WorkloadCx<'_, 'rt> {
    fn deref_mut(&mut self) -> &mut Session<'rt> {
        self.session
    }
}

/// What a workload reports back to the session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Report label; [`Workload::name`] is used when `None`.
    pub label: Option<String>,
    /// Kernels the workload launched.
    pub kernel_launches: u64,
}

impl WorkloadStats {
    /// Stats with the default label.
    pub fn new(kernel_launches: u64) -> Self {
        WorkloadStats {
            label: None,
            kernel_launches,
        }
    }

    /// Overrides the report label (builder style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Something a [`crate::PastaSession`] can profile.
///
/// Object safe: sessions take `&mut dyn Workload`, so workloads can be
/// stored, composed and selected at runtime (the programmatic analogue of
/// handing `accelprof` an arbitrary executable).
pub trait Workload: Send {
    /// Human-readable workload name (default report label).
    fn name(&self) -> &str;

    /// Executes the workload against the instrumented context.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    fn run(&mut self, cx: &mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError>;
}

/// The model-zoo workload: builds a Table IV model, runs batches or
/// training iterations, and destroys it — exactly what the paper's
/// figures profile.
#[derive(Debug, Clone)]
pub struct ModelWorkload {
    model: ModelZoo,
    kind: RunKind,
    steps: usize,
    batch_divisor: usize,
    name: String,
    last: Option<RunReport>,
}

impl ModelWorkload {
    /// One step of `model` under `kind` at the paper's batch size.
    pub fn new(model: ModelZoo, kind: RunKind) -> Self {
        ModelWorkload {
            model,
            kind,
            steps: 1,
            batch_divisor: 1,
            name: format!("{} {}", model.spec().abbr, kind.label()),
            last: None,
        }
    }

    /// Number of batches (inference) or iterations (training).
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Divides the paper batch size (tests and quick runs).
    pub fn batch_divisor(mut self, divisor: usize) -> Self {
        self.batch_divisor = divisor.max(1);
        self
    }

    /// The [`RunReport`] of the most recent run, if any.
    pub fn last_report(&self) -> Option<&RunReport> {
        self.last.as_ref()
    }
}

impl Workload for ModelWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, cx: &mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError> {
        let report = runner::run_model(
            cx.session(),
            self.model,
            self.kind,
            self.steps,
            self.batch_divisor,
        )?;
        let stats = WorkloadStats::new(report.kernel_launches).labeled(format!(
            "{} {}",
            report.abbr,
            self.kind.label()
        ));
        self.last = Some(report);
        Ok(stats)
    }
}

/// Launches a fixed set of raw [`KernelDesc`]s, optionally repeated — the
/// custom-kernel / microbenchmark scenario the model zoo cannot express.
#[derive(Debug, Clone)]
pub struct KernelSweepWorkload {
    name: String,
    kernels: Vec<KernelDesc>,
    repeats: usize,
}

impl KernelSweepWorkload {
    /// An empty sweep named `name`, run once.
    pub fn new(name: impl Into<String>) -> Self {
        KernelSweepWorkload {
            name: name.into(),
            kernels: Vec::new(),
            repeats: 1,
        }
    }

    /// Appends a kernel to the sweep (builder style).
    pub fn kernel(mut self, desc: KernelDesc) -> Self {
        self.kernels.push(desc);
        self
    }

    /// Appends many kernels.
    pub fn kernels(mut self, descs: impl IntoIterator<Item = KernelDesc>) -> Self {
        self.kernels.extend(descs);
        self
    }

    /// How many times the whole sweep runs.
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Kernels currently in the sweep.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when no kernels are queued.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

impl Workload for KernelSweepWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, cx: &mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError> {
        let mut launches = 0;
        for _ in 0..self.repeats {
            for desc in &self.kernels {
                cx.launch_kernel(desc.clone())?;
                launches += 1;
            }
        }
        // No explicit synchronize: the session drains device work after
        // every workload before closing the measurement window.
        Ok(WorkloadStats::new(launches))
    }
}

/// Adapts a closure into a [`Workload`]; the quickest way to profile an
/// ad-hoc scenario.
///
/// ```
/// use pasta_core::{FnWorkload, Pasta, WorkloadStats};
/// use dl_framework::dtype::DType;
///
/// # fn main() -> Result<(), pasta_core::PastaError> {
/// let mut session = Pasta::builder().rtx_3060().build()?;
/// let mut workload = FnWorkload::new("alloc-probe", |cx| {
///     let t = cx.alloc_tensor(&[1024], DType::F32)?;
///     cx.free_tensor(&t);
///     Ok(WorkloadStats::new(0))
/// });
/// let report = session.run(&mut workload)?;
/// assert_eq!(report.workload, "alloc-probe");
/// # Ok(())
/// # }
/// ```
pub struct FnWorkload<F> {
    name: String,
    f: F,
}

impl<F> FnWorkload<F>
where
    F: FnMut(&mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError> + Send,
{
    /// Wraps `f` as a workload named `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnWorkload {
            name: name.into(),
            f,
        }
    }
}

impl<F> Workload for FnWorkload<F>
where
    F: FnMut(&mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError> + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, cx: &mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError> {
        (self.f)(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_workload_builder_and_name() {
        let w = ModelWorkload::new(ModelZoo::Bert, RunKind::Inference)
            .steps(2)
            .batch_divisor(8);
        assert_eq!(w.name(), "BERT inference");
        assert_eq!(w.steps, 2);
        assert_eq!(w.batch_divisor, 8);
        assert!(w.last_report().is_none());
    }

    #[test]
    fn kernel_sweep_builder() {
        use accel_sim::Dim3;
        let w = KernelSweepWorkload::new("sweep")
            .kernel(KernelDesc::new("k0", Dim3::linear(1), Dim3::linear(32)))
            .kernels([KernelDesc::new("k1", Dim3::linear(2), Dim3::linear(64))])
            .repeats(3);
        assert_eq!(w.name(), "sweep");
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.repeats, 3);
    }

    #[test]
    fn workload_stats_label_override() {
        let s = WorkloadStats::new(5).labeled("custom");
        assert_eq!(s.kernel_launches, 5);
        assert_eq!(s.label.as_deref(), Some("custom"));
    }

    #[test]
    fn workload_trait_is_object_safe() {
        fn takes_dyn(_w: &mut dyn Workload) {}
        let mut w = KernelSweepWorkload::new("s");
        takes_dyn(&mut w);
    }
}
