//! The PASTA entry point: builder and session.
//!
//! [`Pasta::builder`] assembles devices, an instrumentation backend, an
//! analysis mode, an optional UVM configuration and a set of tools into a
//! [`PastaSession`] — the programmatic equivalent of the paper's
//! `accelprof -v -t <tool> <executable>` launcher.
//!
//! The primary run API is [`PastaSession::run`], which profiles anything
//! implementing the object-safe [`Workload`] trait against a fresh
//! instrumented framework session: zoo models via
//! [`crate::ModelWorkload`], raw kernel sweeps via
//! [`crate::KernelSweepWorkload`], ad-hoc closures via
//! [`crate::FnWorkload`], or user-defined types. The historical
//! [`PastaSession::run_model`] / [`PastaSession::run_model_scaled`] entry
//! points are thin wrappers that forward a [`crate::ModelWorkload`]
//! through the same path and produce identical [`SessionReport`]s.

use crate::error::PastaError;
use crate::handler::{attach_nv, attach_roc, attach_session};
use crate::hub::{new_shared, HubSink, SharedHub};
use crate::knob::{KernelAggregate, Knob};
use crate::processor::EventProcessor;
use crate::range::RangeFilter;
use crate::report::{SessionReport, ToolReport};
use crate::tool::Tool;
use crate::workload::{ModelWorkload, Workload, WorkloadCx};
use accel_sim::instrument::ProfilerHandle;
use accel_sim::{AnalysisMode, DeviceId, DeviceRuntime, DeviceSpec, OverheadBreakdown, Vendor};
use dl_framework::alloc::AllocatorConfig;
use dl_framework::models::{ModelZoo, RunKind};
use dl_framework::pycall::CrossLayerStack;
use dl_framework::session::Session;
use std::sync::Arc;
use uvm_sim::{PrefetchPlan, UvmConfig, UvmManager};
use vendor_amd::rocprofiler::RocProfilerConfig;
use vendor_amd::HipContext;
use vendor_nv::nvbit::NvbitConfig;
use vendor_nv::sanitizer::SanitizerConfig;
use vendor_nv::CudaContext;

/// Which instrumentation backend to attach (paper §III-D: users "choose
/// either of these libraries independently or use both in conjunction").
#[derive(Debug, Clone, PartialEq)]
pub enum BackendChoice {
    /// NVIDIA Compute Sanitizer (memory/barrier coverage).
    Sanitizer(SanitizerConfig),
    /// NVIDIA NVBit (all-instruction coverage, CPU analysis).
    Nvbit(NvbitConfig),
    /// AMD ROCProfiler-SDK.
    RocProfiler(RocProfilerConfig),
    /// Host callbacks only — no device instrumentation.
    HostOnly,
}

/// UVM attachment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct UvmSetup {
    /// UVM cost-model config.
    pub config: UvmConfig,
    /// Managed-memory budget per device; `None` = full usable capacity.
    /// Setting this below the workload footprint creates oversubscription
    /// (paper §V-A methodology).
    pub budget_bytes: Option<u64>,
    /// Back the DL framework's caching allocator with
    /// `cudaMallocManaged` so every tensor lives in managed memory.
    pub managed_allocator: bool,
}

impl Default for UvmSetup {
    fn default() -> Self {
        UvmSetup {
            config: UvmConfig::default(),
            budget_bytes: None,
            managed_allocator: true,
        }
    }
}

enum RuntimeBox {
    Cuda(CudaContext),
    Hip(HipContext),
}

impl RuntimeBox {
    fn as_runtime_mut(&mut self) -> &mut dyn DeviceRuntime {
        match self {
            RuntimeBox::Cuda(c) => c,
            RuntimeBox::Hip(h) => h,
        }
    }
}

/// Marker type: use [`Pasta::builder`].
#[derive(Debug)]
pub struct Pasta;

impl Pasta {
    /// Starts building a session.
    pub fn builder() -> PastaBuilder {
        PastaBuilder::default()
    }
}

/// Builder for [`PastaSession`].
pub struct PastaBuilder {
    specs: Option<Vec<DeviceSpec>>,
    backend: Option<BackendChoice>,
    analysis_mode: AnalysisMode,
    sampling_rate: u32,
    tools: Vec<Box<dyn Tool>>,
    range: RangeFilter,
    capture_knob: Option<Knob>,
    uvm: Option<UvmSetup>,
}

impl Default for PastaBuilder {
    fn default() -> Self {
        PastaBuilder {
            specs: None,
            backend: None,
            analysis_mode: AnalysisMode::GpuResident,
            sampling_rate: 1,
            tools: Vec::new(),
            range: RangeFilter::all(),
            capture_knob: Some(Knob::MaxMemReferencedKernel),
            uvm: None,
        }
    }
}

impl std::fmt::Debug for PastaBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PastaBuilder")
            .field(
                "devices",
                &self.specs.as_ref().map_or(0, |specs| specs.len()),
            )
            .field("tools", &self.tools.len())
            .field("analysis_mode", &self.analysis_mode)
            .finish()
    }
}

impl PastaBuilder {
    /// One NVIDIA A100 80 GB (Table III machine A).
    pub fn a100(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::a100_80gb()]);
        self
    }

    /// Two A100s (the multi-GPU experiments).
    pub fn a100_x2(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::a100_80gb(), DeviceSpec::a100_80gb()]);
        self
    }

    /// One RTX 3060 (machine B).
    pub fn rtx_3060(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::rtx_3060()]);
        self
    }

    /// One MI300X (machine C) — selects the HIP runtime.
    pub fn mi300x(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::mi300x()]);
        self
    }

    /// Explicit device list (all same vendor, non-empty).
    pub fn devices(mut self, specs: Vec<DeviceSpec>) -> Self {
        self.specs = Some(specs);
        self
    }

    /// Registers a tool.
    pub fn tool(mut self, tool: impl Tool + 'static) -> Self {
        self.tools.push(Box::new(tool));
        self
    }

    /// Registers a boxed tool.
    pub fn boxed_tool(mut self, tool: Box<dyn Tool>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Chooses the instrumentation backend explicitly.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the analysis mode for the default backend.
    pub fn analysis_mode(mut self, mode: AnalysisMode) -> Self {
        self.analysis_mode = mode;
        self
    }

    /// Record-sampling factor (`ACCEL_PROF_ENV_SAMPLE_RATE`).
    pub fn sampling(mut self, rate: u32) -> Self {
        self.sampling_rate = rate.max(1);
        self
    }

    /// Range-specific analysis filter.
    pub fn range(mut self, range: RangeFilter) -> Self {
        self.range = range;
        self
    }

    /// Which knob drives cross-layer stack capture (None disables).
    pub fn capture_knob(mut self, knob: Option<Knob>) -> Self {
        self.capture_knob = knob;
        self
    }

    /// Attaches UVM with the given setup.
    pub fn uvm(mut self, setup: UvmSetup) -> Self {
        self.uvm = Some(setup);
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// [`PastaError::Config`] on an explicitly empty device list, mixed
    /// vendors, duplicate tool names, or a backend/vendor mismatch.
    /// (No device selection at all defaults to one A100.)
    pub fn build(self) -> Result<PastaSession, PastaError> {
        let specs = match self.specs {
            None => vec![DeviceSpec::a100_80gb()],
            Some(specs) if specs.is_empty() => {
                return Err(PastaError::Config(
                    "device list is empty: pass at least one DeviceSpec".into(),
                ))
            }
            Some(specs) => specs,
        };
        let vendor = specs[0].vendor;
        if specs.iter().any(|s| s.vendor != vendor) {
            return Err(PastaError::Config(
                "all devices in one session must share a vendor".into(),
            ));
        }
        for (i, tool) in self.tools.iter().enumerate() {
            if self.tools[..i].iter().any(|t| t.name() == tool.name()) {
                return Err(PastaError::Config(format!(
                    "duplicate tool name `{}`: tool names select tools and must be unique",
                    tool.name()
                )));
            }
        }

        let mut processor = EventProcessor::new();
        processor.range = self.range;
        processor.capture_knob = self.capture_knob;
        for tool in self.tools {
            processor.tools.register(tool);
        }
        let wants_device = processor.tools.interest().wants_device_events();
        let hub = new_shared(processor);

        let backend = self.backend.unwrap_or(match vendor {
            Vendor::Amd => BackendChoice::RocProfiler(
                RocProfilerConfig::default().with_mode(self.analysis_mode),
            ),
            _ => {
                let cfg = match self.analysis_mode {
                    AnalysisMode::GpuResident => SanitizerConfig::gpu_resident(),
                    AnalysisMode::CpuPostProcess => SanitizerConfig::cpu_post_process(),
                };
                BackendChoice::Sanitizer(cfg)
            }
        });

        let mut managed_allocator = false;
        let (runtime, profiler) = match vendor {
            Vendor::Amd => {
                let mut ctx = HipContext::new(specs.clone());
                attach_roc(&mut ctx, Arc::clone(&hub));
                if let Some(uvm_setup) = &self.uvm {
                    managed_allocator = uvm_setup.managed_allocator;
                    let mut uvm = UvmManager::new(uvm_setup.config.clone());
                    for spec in &specs {
                        let budget = uvm_setup
                            .budget_bytes
                            .unwrap_or(spec.mem_capacity)
                            .min(spec.mem_capacity);
                        uvm.add_device(budget, spec.link_bandwidth_gbps, spec.fault_latency_ns);
                    }
                    ctx.attach_uvm(uvm);
                }
                let handle = match backend {
                    BackendChoice::RocProfiler(cfg) if wants_device => {
                        Some(vendor_amd::rocprofiler::attach(&mut ctx, cfg))
                    }
                    BackendChoice::HostOnly | BackendChoice::RocProfiler(_) => None,
                    _ => {
                        return Err(PastaError::Config(
                            "NVIDIA backends cannot attach to AMD devices".into(),
                        ))
                    }
                };
                (RuntimeBox::Hip(ctx), handle)
            }
            _ => {
                let mut ctx = CudaContext::new(specs.clone());
                attach_nv(&mut ctx, Arc::clone(&hub));
                if let Some(uvm_setup) = &self.uvm {
                    managed_allocator = uvm_setup.managed_allocator;
                    let mut uvm = UvmManager::new(uvm_setup.config.clone());
                    for spec in &specs {
                        let budget = uvm_setup
                            .budget_bytes
                            .unwrap_or(spec.mem_capacity)
                            .min(spec.mem_capacity);
                        uvm.add_device(budget, spec.link_bandwidth_gbps, spec.fault_latency_ns);
                    }
                    ctx.attach_uvm(uvm);
                }
                let handle = match backend {
                    BackendChoice::Sanitizer(cfg) if wants_device => {
                        Some(vendor_nv::sanitizer::attach(
                            &mut ctx,
                            cfg.with_sampling(self.sampling_rate),
                        ))
                    }
                    BackendChoice::Nvbit(cfg) if wants_device => Some(vendor_nv::nvbit::attach(
                        &mut ctx,
                        cfg.with_sampling(self.sampling_rate),
                    )),
                    BackendChoice::HostOnly
                    | BackendChoice::Sanitizer(_)
                    | BackendChoice::Nvbit(_) => None,
                    BackendChoice::RocProfiler(_) => {
                        return Err(PastaError::Config(
                            "ROCProfiler cannot attach to NVIDIA devices".into(),
                        ))
                    }
                };
                (RuntimeBox::Cuda(ctx), handle)
            }
        };

        if let Some(handle) = &profiler {
            handle.set_sink(Box::new(HubSink::new(Arc::clone(&hub))));
        }

        Ok(PastaSession {
            runtime,
            hub,
            profiler,
            managed_allocator,
        })
    }
}

/// A live PASTA profiling session.
pub struct PastaSession {
    runtime: RuntimeBox,
    hub: SharedHub,
    profiler: Option<ProfilerHandle>,
    managed_allocator: bool,
}

impl std::fmt::Debug for PastaSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PastaSession")
            .field("profiler_attached", &self.profiler.is_some())
            .field("managed_allocator", &self.managed_allocator)
            .finish()
    }
}

impl PastaSession {
    /// Creates a fresh instrumented framework session over the runtime
    /// and hands it to `f` — the shared substrate of every run path.
    fn with_instrumented_session<R>(
        &mut self,
        f: impl FnOnce(&mut Session<'_>) -> Result<R, PastaError>,
    ) -> Result<R, PastaError> {
        let hub = Arc::clone(&self.hub);
        let managed = self.managed_allocator;
        let rt = self.runtime.as_runtime_mut();
        let alloc_config = if managed {
            AllocatorConfig::managed()
        } else {
            AllocatorConfig::default()
        };
        let backend = dl_framework::backend::BackendProfile::for_vendor(rt.vendor());
        let mut session = Session::with_config(rt, backend, alloc_config);
        attach_session(&mut session, hub);
        f(&mut session)
    }

    /// Profiles an arbitrary [`Workload`] — the primary entry point.
    ///
    /// The workload runs against a fresh instrumented framework session;
    /// everything it does (tensor traffic, operators, kernel launches,
    /// region annotations) flows through the event pipeline to the
    /// registered tools, and the run is summarized as a
    /// [`SessionReport`].
    ///
    /// # Errors
    ///
    /// Propagates workload failures.
    pub fn run(&mut self, workload: &mut dyn Workload) -> Result<SessionReport, PastaError> {
        let overhead_before = self.overhead();
        let records_before = self.records();
        let name = workload.name().to_owned();
        let (result, elapsed, alloc) = self.with_instrumented_session(|session| {
            let t0 = session.runtime().host_time();
            let result = workload.run(&mut WorkloadCx::new(session));
            // Drain in-flight device work — also on failure — so
            // profiled_time covers it and it cannot leak into the next
            // run's measurement window; workloads themselves need not
            // synchronize.
            session.synchronize();
            let t1 = session.runtime().host_time();
            Ok((result, t1 - t0, session.allocator_stats()))
        })?;
        let stats = result?;
        Ok(SessionReport {
            workload: stats.label.unwrap_or(name),
            kernel_launches: stats.kernel_launches,
            profiled_time: accel_sim::SimTime(elapsed),
            overhead: self.overhead_delta(overhead_before),
            records: self.records() - records_before,
            peak_allocated: alloc.peak_allocated,
            peak_reserved: alloc.peak_reserved,
        })
    }

    /// Runs `steps` batches/iterations of a zoo model at the paper's batch
    /// size, under full instrumentation. Forwards a
    /// [`ModelWorkload`] through [`PastaSession::run`].
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn run_model(
        &mut self,
        model: ModelZoo,
        kind: RunKind,
        steps: usize,
    ) -> Result<SessionReport, PastaError> {
        self.run_model_scaled(model, kind, steps, 1)
    }

    /// Like [`PastaSession::run_model`] with the batch divided by
    /// `batch_divisor` (tests and quick runs).
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn run_model_scaled(
        &mut self,
        model: ModelZoo,
        kind: RunKind,
        steps: usize,
        batch_divisor: usize,
    ) -> Result<SessionReport, PastaError> {
        let mut workload = ModelWorkload::new(model, kind)
            .steps(steps)
            .batch_divisor(batch_divisor);
        self.run(&mut workload)
    }

    /// Runs a closure against an instrumented framework session,
    /// returning its value directly (no [`SessionReport`]). Prefer
    /// [`crate::FnWorkload`] + [`PastaSession::run`] when a report is
    /// wanted.
    ///
    /// # Errors
    ///
    /// Propagates errors from `f`.
    pub fn run_custom<R>(
        &mut self,
        f: impl FnOnce(&mut Session<'_>) -> Result<R, accel_sim::AccelError>,
    ) -> Result<R, PastaError> {
        self.with_instrumented_session(|session| f(session).map_err(PastaError::from))
    }

    /// Reports from all registered tools.
    pub fn reports(&self) -> Vec<ToolReport> {
        self.hub.lock().processor.tools.reports()
    }

    /// Runs `f` against the named tool downcast to `T`.
    pub fn with_tool_mut<T: Tool + 'static, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        self.hub.lock().processor.tools.with_tool_mut(name, f)
    }

    /// Cumulative instrumentation overhead so far.
    pub fn overhead(&self) -> OverheadBreakdown {
        self.profiler
            .as_ref()
            .map(ProfilerHandle::breakdown)
            .unwrap_or_default()
    }

    fn overhead_delta(&self, before: OverheadBreakdown) -> OverheadBreakdown {
        let now = self.overhead();
        OverheadBreakdown {
            collection_ns: now.collection_ns - before.collection_ns,
            transfer_ns: now.transfer_ns - before.transfer_ns,
            analysis_ns: now.analysis_ns - before.analysis_ns,
            setup_ns: now.setup_ns - before.setup_ns,
        }
    }

    /// Trace records observed so far (post-sampling).
    pub fn records(&self) -> u64 {
        self.profiler
            .as_ref()
            .map(ProfilerHandle::records_total)
            .unwrap_or(0)
    }

    /// Events processed by the dispatch unit so far.
    pub fn events_processed(&self) -> u64 {
        self.hub.lock().processor.events_processed()
    }

    /// Installs a UVM prefetch plan to replay before upcoming launches.
    pub fn set_prefetch_plan(&mut self, plan: PrefetchPlan) {
        match &mut self.runtime {
            RuntimeBox::Cuda(c) => c.set_prefetch_plan(plan),
            RuntimeBox::Hip(h) => h.set_prefetch_plan(plan),
        }
    }

    /// Restricts a device's usable memory (oversubscription methodology).
    pub fn limit_device_memory(&mut self, device: DeviceId, bytes: u64) {
        match &mut self.runtime {
            RuntimeBox::Cuda(c) => c
                .engine_mut()
                .device_mut(device)
                .limit_usable_capacity(bytes),
            RuntimeBox::Hip(h) => h
                .engine_mut()
                .device_mut(device)
                .limit_usable_capacity(bytes),
        }
    }

    /// The knob-selected kernel and its aggregate.
    pub fn knob_selection(&self, knob: Knob) -> Option<(String, KernelAggregate)> {
        self.hub
            .lock()
            .processor
            .knobs
            .select(knob)
            .map(|(n, a)| (n.to_string(), a))
    }

    /// The captured cross-layer stack for a kernel, if any.
    pub fn cross_layer_stack(&self, kernel: &str) -> Option<CrossLayerStack> {
        self.hub.lock().processor.stacks.stack_for(kernel).cloned()
    }

    /// Resets all tools, knobs and stacks (the runtime keeps running).
    pub fn reset_analysis(&mut self) {
        self.hub.lock().processor.reset();
        if let Some(p) = &self.profiler {
            p.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::LaunchCounter;

    #[test]
    fn build_defaults_to_one_a100() {
        let session = Pasta::builder().build().unwrap();
        assert!(format!("{session:?}").contains("PastaSession"));
    }

    #[test]
    fn mixed_vendors_rejected() {
        let r = Pasta::builder()
            .devices(vec![DeviceSpec::a100_80gb(), DeviceSpec::mi300x()])
            .build();
        assert!(matches!(r, Err(PastaError::Config(_))));
    }

    #[test]
    fn explicitly_empty_device_list_rejected() {
        let r = Pasta::builder().devices(vec![]).build();
        let Err(PastaError::Config(msg)) = r else {
            panic!("empty device list must be a config error");
        };
        assert!(msg.contains("empty"), "unhelpful message: {msg}");
    }

    #[test]
    fn duplicate_tool_names_rejected() {
        let r = Pasta::builder()
            .a100()
            .tool(LaunchCounter::default())
            .tool(LaunchCounter::default())
            .build();
        let Err(PastaError::Config(msg)) = r else {
            panic!("duplicate tool names must be a config error");
        };
        assert!(msg.contains("launch-counter"), "unhelpful message: {msg}");
    }

    #[test]
    fn rocprofiler_on_nvidia_rejected() {
        let r = Pasta::builder()
            .a100()
            .tool(DeviceHungry)
            .backend(BackendChoice::RocProfiler(RocProfilerConfig::default()))
            .build();
        assert!(matches!(r, Err(PastaError::Config(_))));
    }

    struct DeviceHungry;
    impl Tool for DeviceHungry {
        fn name(&self) -> &str {
            "hungry"
        }
        fn interest(&self) -> crate::tool::Interest {
            crate::tool::Interest::all()
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn coarse_tools_skip_device_instrumentation() {
        let session = Pasta::builder()
            .rtx_3060()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        assert!(
            session.profiler.is_none(),
            "no device-event interest → no probe → near-zero overhead"
        );
    }

    #[test]
    fn device_tools_attach_profiler() {
        let session = Pasta::builder()
            .rtx_3060()
            .tool(DeviceHungry)
            .build()
            .unwrap();
        assert!(session.profiler.is_some());
    }

    #[test]
    fn run_model_produces_report_and_tool_state() {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let report = session
            .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, 16)
            .unwrap();
        assert!(report.kernel_launches > 40);
        assert!(report.profiled_time.as_nanos() > 0);
        let n = session
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, report.kernel_launches);
        assert!(session.events_processed() > report.kernel_launches);
    }

    #[test]
    fn run_model_and_run_workload_report_identically() {
        let run_via = |use_trait: bool| {
            let mut session = Pasta::builder()
                .rtx_3060()
                .tool(LaunchCounter::default())
                .build()
                .unwrap();
            if use_trait {
                let mut w = ModelWorkload::new(ModelZoo::ResNet18, RunKind::Inference)
                    .steps(1)
                    .batch_divisor(16);
                session.run(&mut w).unwrap()
            } else {
                session
                    .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, 16)
                    .unwrap()
            }
        };
        assert_eq!(
            run_via(false),
            run_via(true),
            "run_model must forward through run() byte-identically"
        );
    }

    #[test]
    fn kernel_sweep_workload_profiles_raw_kernels() {
        use crate::workload::KernelSweepWorkload;
        use accel_sim::{Dim3, KernelBody, KernelDesc};
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let mut sweep = KernelSweepWorkload::new("sweep")
            .kernel(
                KernelDesc::new("custom_a", Dim3::linear(8), Dim3::linear(128))
                    .body(KernelBody::compute(1 << 20)),
            )
            .kernel(
                KernelDesc::new("custom_b", Dim3::linear(4), Dim3::linear(64))
                    .body(KernelBody::compute(1 << 18)),
            )
            .repeats(3);
        let report = session.run(&mut sweep).unwrap();
        assert_eq!(report.workload, "sweep");
        assert_eq!(report.kernel_launches, 6);
        assert!(report.profiled_time.as_nanos() > 0);
        let n = session
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 6, "raw launches reach the tools like model kernels");
    }

    #[test]
    fn fn_workload_runs_and_labels_report() {
        use crate::workload::{FnWorkload, WorkloadStats};
        let mut session = Pasta::builder().rtx_3060().build().unwrap();
        let mut w = FnWorkload::new("closure", |cx| {
            let t = cx
                .alloc_tensor(&[256], dl_framework::dtype::DType::F32)
                .map_err(PastaError::from)?;
            cx.free_tensor(&t);
            Ok(WorkloadStats::new(0).labeled("relabeled"))
        });
        let report = session.run(&mut w).unwrap();
        assert_eq!(report.workload, "relabeled");
        assert!(report.peak_allocated >= 1024);
    }

    #[test]
    fn failed_workload_device_time_does_not_leak_into_next_run() {
        use crate::workload::{FnWorkload, WorkloadStats};
        use accel_sim::{Dim3, KernelBody, KernelDesc};
        let mut session = Pasta::builder().rtx_3060().build().unwrap();
        let mut failing = FnWorkload::new("fails-mid-flight", |cx| {
            // A long kernel is in flight when the workload errors out.
            let desc = KernelDesc::new("long_kernel", Dim3::linear(4096), Dim3::linear(256))
                .body(KernelBody::compute(1 << 28));
            cx.launch_kernel(desc)?;
            Err(PastaError::Config("injected failure".into()))
        });
        let failed = session.run(&mut failing);
        assert!(failed.is_err());
        let mut idle = FnWorkload::new("idle", |_cx| Ok(WorkloadStats::new(0)));
        let report = session.run(&mut idle).unwrap();
        assert!(
            report.profiled_time.as_nanos() < 10_000,
            "stale device time from the failed run leaked into the idle run: {}",
            report.profiled_time
        );
    }

    #[test]
    fn workload_cx_exposes_uvm_manager() {
        use crate::workload::{FnWorkload, WorkloadStats};
        let mut with_uvm = Pasta::builder()
            .rtx_3060()
            .uvm(UvmSetup::default())
            .build()
            .unwrap();
        let mut probe = FnWorkload::new("uvm-probe", |cx| {
            assert!(cx.uvm().is_some(), "UVM sessions expose the manager");
            let resident = cx.uvm_mut().unwrap().resident_bytes(accel_sim::DeviceId(0));
            let _ = resident;
            Ok(WorkloadStats::new(0))
        });
        with_uvm.run(&mut probe).unwrap();

        let mut without = Pasta::builder().rtx_3060().build().unwrap();
        let mut probe = FnWorkload::new("no-uvm-probe", |cx| {
            assert!(cx.uvm().is_none(), "no UVM setup → no manager");
            Ok(WorkloadStats::new(0))
        });
        without.run(&mut probe).unwrap();
    }

    #[test]
    fn amd_session_runs_models_too() {
        let mut session = Pasta::builder()
            .mi300x()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let report = session
            .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
            .unwrap();
        assert!(report.kernel_launches > 50);
    }

    #[test]
    fn knobs_and_stacks_populate_during_runs() {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(DeviceHungry)
            .capture_knob(Some(Knob::MaxMemReferencedKernel))
            .build()
            .unwrap();
        session
            .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
            .unwrap();
        let (kernel, agg) = session
            .knob_selection(Knob::MaxMemReferencedKernel)
            .expect("knob selects a kernel");
        assert!(agg.memory_records > 0);
        let stack = session
            .cross_layer_stack(&kernel)
            .expect("stack captured for the hot kernel");
        assert!(!stack.native.is_empty());
        assert!(stack.render().contains("Python"));
    }
}
