//! The PASTA entry point: builder and session.
//!
//! [`Pasta::builder`] assembles devices, an instrumentation backend, an
//! analysis mode, an optional UVM configuration and a set of tools into a
//! [`PastaSession`] — the programmatic equivalent of the paper's
//! `accelprof -v -t <tool> <executable>` launcher.
//!
//! The primary run API is [`PastaSession::run`], which profiles anything
//! implementing the object-safe [`Workload`] trait against a fresh
//! instrumented framework session: zoo models via
//! [`crate::ModelWorkload`], raw kernel sweeps via
//! [`crate::KernelSweepWorkload`], ad-hoc closures via
//! [`crate::FnWorkload`], or user-defined types. The historical
//! [`PastaSession::run_model`] / [`PastaSession::run_model_scaled`] entry
//! points are thin wrappers that forward a [`crate::ModelWorkload`]
//! through the same path and produce identical [`SessionReport`]s.

use crate::error::{LaneFailure, PastaError, SalvagedRun};
use crate::handler::{attach_nv, attach_roc, attach_session};
use crate::hub::{new_shared, Hub, HubSink, SharedHub};
use crate::knob::{KernelAggregate, Knob};
use crate::processor::EventProcessor;
use crate::range::RangeFilter;
use crate::report::{MergedReport, SessionReport, ToolQuarantine, ToolReport, UvmReport};
use crate::spine::{SpineConfig, SpineDrainer, SpineMode};
use crate::tool::Tool;
use crate::workload::{ModelWorkload, Workload, WorkloadCx};
use accel_sim::instrument::ProfilerHandle;
use accel_sim::{
    panic_message, AccelError, AnalysisMode, DeviceId, DeviceRuntime, DeviceSpec,
    OverheadBreakdown, Vendor,
};
use dl_framework::alloc::AllocatorConfig;
use dl_framework::lane_exec;
use dl_framework::models::{ModelZoo, RunKind};
use dl_framework::parallel::DeviceLane;
use dl_framework::pycall::CrossLayerStack;
use dl_framework::session::Session;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uvm_sim::{PrefetchPlan, UvmConfig, UvmManager, UvmStats};
use vendor_amd::rocprofiler::RocProfilerConfig;
use vendor_amd::HipContext;
use vendor_nv::nvbit::NvbitConfig;
use vendor_nv::sanitizer::SanitizerConfig;
use vendor_nv::CudaContext;

/// Which instrumentation backend to attach (paper §III-D: users "choose
/// either of these libraries independently or use both in conjunction").
#[derive(Debug, Clone, PartialEq)]
pub enum BackendChoice {
    /// NVIDIA Compute Sanitizer (memory/barrier coverage).
    Sanitizer(SanitizerConfig),
    /// NVIDIA NVBit (all-instruction coverage, CPU analysis).
    Nvbit(NvbitConfig),
    /// AMD ROCProfiler-SDK.
    RocProfiler(RocProfilerConfig),
    /// Host callbacks only — no device instrumentation.
    HostOnly,
}

/// UVM attachment configuration.
///
/// Managed ranges default to *private* (per-device demand paging). A
/// workload — or a parallel lane — can additionally mark a range
/// **shared** across devices through
/// [`accel_sim::ResidencyModel::register_shared`] (reachable via
/// [`crate::WorkloadCx::uvm_mut`] or the lane session's runtime): remote
/// reads then read-duplicate the owner's copy over the peer link and
/// remote writes invalidate the other devices' duplicates, with the
/// traffic surfacing in [`UvmReport::peer_bytes`] and
/// `Event::UvmPeerMigrate`.
#[derive(Debug, Clone, PartialEq)]
pub struct UvmSetup {
    /// UVM cost-model config.
    pub config: UvmConfig,
    /// Managed-memory budget per device; `None` = full usable capacity.
    /// Setting this below the workload footprint creates oversubscription
    /// (paper §V-A methodology).
    pub budget_bytes: Option<u64>,
    /// Back the DL framework's caching allocator with
    /// `cudaMallocManaged` so every tensor lives in managed memory.
    pub managed_allocator: bool,
}

impl Default for UvmSetup {
    fn default() -> Self {
        UvmSetup {
            config: UvmConfig::default(),
            budget_bytes: None,
            managed_allocator: true,
        }
    }
}

enum RuntimeBox {
    Cuda(CudaContext),
    Hip(HipContext),
}

impl RuntimeBox {
    fn as_runtime_mut(&mut self) -> &mut dyn DeviceRuntime {
        match self {
            RuntimeBox::Cuda(c) => c,
            RuntimeBox::Hip(h) => h,
        }
    }

    fn engine(&self) -> &accel_sim::Engine {
        match self {
            RuntimeBox::Cuda(c) => c.engine(),
            RuntimeBox::Hip(h) => h.engine(),
        }
    }

    fn engine_mut(&mut self) -> &mut accel_sim::Engine {
        match self {
            RuntimeBox::Cuda(c) => c.engine_mut(),
            RuntimeBox::Hip(h) => h.engine_mut(),
        }
    }

    /// The attached UVM manager, if any.
    fn uvm_manager(&self) -> Option<&UvmManager> {
        self.engine()
            .residency()
            .and_then(|r| r.as_any().downcast_ref())
    }

    /// Mutable access to the attached UVM manager, if any.
    fn uvm_manager_mut(&mut self) -> Option<&mut UvmManager> {
        self.engine_mut()
            .residency_mut()
            .and_then(|r| r.as_any_mut().downcast_mut())
    }

    /// Attaches `uvm` as the context's residency model.
    fn attach_uvm(&mut self, uvm: UvmManager) {
        match self {
            RuntimeBox::Cuda(c) => c.attach_uvm(uvm),
            RuntimeBox::Hip(h) => h.attach_uvm(uvm),
        }
    }
}

/// Marker type: use [`Pasta::builder`].
#[derive(Debug)]
pub struct Pasta;

impl Pasta {
    /// Starts building a session.
    pub fn builder() -> PastaBuilder {
        PastaBuilder::default()
    }
}

/// Thread budgets for the scale-out executor: how many OS threads a
/// parallel region and its teardown may spend, independent of how many
/// device lanes it drives. Every budget is a cap, not a count — a region
/// never spawns more workers than it has work — and `0` means "available
/// parallelism" (what the OS reports).
///
/// Threads are a *resource* knob only: per-lane event streams, merged
/// reports and UVM statistics are byte-identical at every setting (the
/// tree merge's shape depends on shard count alone, and lanes never share
/// state), so `ParallelConfig` can be tuned freely without invalidating
/// profiles.
///
/// ```
/// use pasta_core::{Pasta, ParallelConfig};
/// let builder = Pasta::builder().parallel(ParallelConfig {
///     max_lane_threads: 4,
///     ..ParallelConfig::default()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Lane worker threads for `run_parallel`/`run_parallel_each`: lanes
    /// are multiplexed onto at most this many pooled workers (named
    /// `lane-dev{N}` after their first lane) instead of one thread per
    /// device. Idle workers absorb spine-drain duty.
    pub max_lane_threads: usize,
    /// Worker threads for the session-end merge plan (tool folds across
    /// shards, forked UVM managers) — the tree reduction in
    /// [`crate::merge`], workers named `merge-{k}`.
    pub max_merge_threads: usize,
    /// Background spine-drainer threads for `run_parallel` (named
    /// `drain-dev{N}`); each services an interleaved slice of the lane
    /// devices instead of one thread per device.
    pub max_drain_threads: usize,
}

/// Builder for [`PastaSession`].
pub struct PastaBuilder {
    specs: Option<Vec<DeviceSpec>>,
    backend: Option<BackendChoice>,
    analysis_mode: AnalysisMode,
    sampling_rate: u32,
    tools: Vec<Box<dyn Tool>>,
    range: RangeFilter,
    capture_knob: Option<Knob>,
    uvm: Option<UvmSetup>,
    spine_mode: SpineMode,
    spine_config: SpineConfig,
    parallel: ParallelConfig,
}

impl Default for PastaBuilder {
    fn default() -> Self {
        PastaBuilder {
            specs: None,
            backend: None,
            analysis_mode: AnalysisMode::GpuResident,
            sampling_rate: 1,
            tools: Vec::new(),
            range: RangeFilter::all(),
            capture_knob: Some(Knob::MaxMemReferencedKernel),
            uvm: None,
            spine_mode: SpineMode::Ring,
            spine_config: SpineConfig::default(),
            parallel: ParallelConfig::default(),
        }
    }
}

impl std::fmt::Debug for PastaBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PastaBuilder")
            .field(
                "devices",
                &self.specs.as_ref().map_or(0, |specs| specs.len()),
            )
            .field("tools", &self.tools.len())
            .field("analysis_mode", &self.analysis_mode)
            .finish()
    }
}

impl PastaBuilder {
    /// One NVIDIA A100 80 GB (Table III machine A).
    pub fn a100(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::a100_80gb()]);
        self
    }

    /// Two A100s (the multi-GPU experiments).
    pub fn a100_x2(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::a100_80gb(), DeviceSpec::a100_80gb()]);
        self
    }

    /// One RTX 3060 (machine B).
    pub fn rtx_3060(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::rtx_3060()]);
        self
    }

    /// One MI300X (machine C) — selects the HIP runtime.
    pub fn mi300x(mut self) -> Self {
        self.specs = Some(vec![DeviceSpec::mi300x()]);
        self
    }

    /// Explicit device list (all same vendor, non-empty).
    pub fn devices(mut self, specs: Vec<DeviceSpec>) -> Self {
        self.specs = Some(specs);
        self
    }

    /// Registers a tool.
    pub fn tool(mut self, tool: impl Tool + 'static) -> Self {
        self.tools.push(Box::new(tool));
        self
    }

    /// Registers a boxed tool.
    pub fn boxed_tool(mut self, tool: Box<dyn Tool>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Chooses the instrumentation backend explicitly.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the analysis mode for the default backend.
    pub fn analysis_mode(mut self, mode: AnalysisMode) -> Self {
        self.analysis_mode = mode;
        self
    }

    /// Record-sampling factor (`ACCEL_PROF_ENV_SAMPLE_RATE`).
    pub fn sampling(mut self, rate: u32) -> Self {
        self.sampling_rate = rate.max(1);
        self
    }

    /// Range-specific analysis filter.
    pub fn range(mut self, range: RangeFilter) -> Self {
        self.range = range;
        self
    }

    /// Which knob drives cross-layer stack capture (None disables).
    pub fn capture_knob(mut self, knob: Option<Knob>) -> Self {
        self.capture_knob = knob;
        self
    }

    /// Attaches UVM with the given setup.
    pub fn uvm(mut self, setup: UvmSetup) -> Self {
        self.uvm = Some(setup);
        self
    }

    /// How sinks hand fine-grained events to their shard:
    /// [`SpineMode::Ring`] (the default lock-free SPSC spine) or
    /// [`SpineMode::Inline`] (the mutex-spine reference — kept for
    /// differential byte-identity tests and bench decompositions).
    pub fn spine_mode(mut self, mode: SpineMode) -> Self {
        self.spine_mode = mode;
        self
    }

    /// Ring geometry for the event spine (slots per ring, preallocated
    /// batch buffers, events per batch). Applies to the session's own
    /// sink and to every per-lane sink `run_parallel` creates. Validated
    /// at [`PastaBuilder::build`]: rings need at least 2 slots.
    pub fn spine_config(mut self, config: SpineConfig) -> Self {
        self.spine_config = config;
        self
    }

    /// Thread budgets for parallel regions and the session-end merge —
    /// see [`ParallelConfig`].
    pub fn parallel(mut self, config: ParallelConfig) -> Self {
        self.parallel = config;
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// [`PastaError::Config`] on an explicitly empty device list, mixed
    /// vendors, duplicate tool names, a backend/vendor mismatch, or an
    /// invalid spine geometry (rings need ≥ 2 slots).
    /// (No device selection at all defaults to one A100.)
    pub fn build(self) -> Result<PastaSession, PastaError> {
        if self.spine_config.ring_slots < 2 {
            return Err(PastaError::Config(format!(
                "spine ring_slots must be at least 2 (got {}): a 1-slot ring \
                 cannot distinguish full from empty",
                self.spine_config.ring_slots
            )));
        }
        if self.spine_config.batch_events == 0 {
            return Err(PastaError::Config(
                "spine batch_events must be at least 1".into(),
            ));
        }
        let specs = match self.specs {
            None => vec![DeviceSpec::a100_80gb()],
            Some(specs) if specs.is_empty() => {
                return Err(PastaError::Config(
                    "device list is empty: pass at least one DeviceSpec".into(),
                ))
            }
            Some(specs) => specs,
        };
        let vendor = specs[0].vendor;
        if specs.iter().any(|s| s.vendor != vendor) {
            return Err(PastaError::Config(
                "all devices in one session must share a vendor".into(),
            ));
        }
        for (i, tool) in self.tools.iter().enumerate() {
            if self.tools[..i].iter().any(|t| t.name() == tool.name()) {
                return Err(PastaError::Config(format!(
                    "duplicate tool name `{}`: tool names select tools and must be unique",
                    tool.name()
                )));
            }
        }

        let mut processor = EventProcessor::new();
        processor.range = self.range;
        processor.capture_knob = self.capture_knob;
        for tool in self.tools {
            processor.tools.register(tool);
        }
        let wants_device = processor.tools.interest().wants_device_events();
        // One shard per device when every tool forks; otherwise fall back
        // to a single shared shard (correct for any tool, but concurrent
        // lanes then serialize on its lock).
        let shard_forks: Option<Vec<EventProcessor>> =
            (1..specs.len()).map(|_| processor.fork()).collect();
        let hub: SharedHub = match shard_forks {
            Some(rest) if specs.len() > 1 => {
                let mut shards = vec![(DeviceId(0), processor)];
                shards.extend(
                    rest.into_iter()
                        .enumerate()
                        .map(|(i, p)| (DeviceId(i as u32 + 1), p)),
                );
                Arc::new(Hub::sharded(shards).map_err(PastaError::Config)?)
            }
            _ => new_shared(processor),
        };
        hub.set_merge_threads(self.parallel.max_merge_threads);

        let backend = self.backend.unwrap_or(match vendor {
            Vendor::Amd => BackendChoice::RocProfiler(
                RocProfilerConfig::default().with_mode(self.analysis_mode),
            ),
            _ => {
                let cfg = match self.analysis_mode {
                    AnalysisMode::GpuResident => SanitizerConfig::gpu_resident(),
                    AnalysisMode::CpuPostProcess => SanitizerConfig::cpu_post_process(),
                };
                BackendChoice::Sanitizer(cfg)
            }
        });

        let mut managed_allocator = false;
        let (runtime, profiler) = match vendor {
            Vendor::Amd => {
                let mut ctx = HipContext::new(specs.clone());
                attach_roc(&mut ctx, Arc::clone(&hub));
                if let Some(uvm_setup) = &self.uvm {
                    managed_allocator = uvm_setup.managed_allocator;
                    let mut uvm = UvmManager::new(uvm_setup.config.clone());
                    for spec in &specs {
                        let budget = uvm_setup
                            .budget_bytes
                            .unwrap_or(spec.mem_capacity)
                            .min(spec.mem_capacity);
                        uvm.add_device_p2p(
                            budget,
                            spec.link_bandwidth_gbps,
                            spec.p2p_bandwidth_gbps,
                            spec.fault_latency_ns,
                        );
                    }
                    ctx.attach_uvm(uvm);
                }
                let handle = attach_roc_backend(&mut ctx, &backend, wants_device)?;
                (RuntimeBox::Hip(ctx), handle)
            }
            _ => {
                let mut ctx = CudaContext::new(specs.clone());
                attach_nv(&mut ctx, Arc::clone(&hub));
                if let Some(uvm_setup) = &self.uvm {
                    managed_allocator = uvm_setup.managed_allocator;
                    let mut uvm = UvmManager::new(uvm_setup.config.clone());
                    for spec in &specs {
                        let budget = uvm_setup
                            .budget_bytes
                            .unwrap_or(spec.mem_capacity)
                            .min(spec.mem_capacity);
                        uvm.add_device_p2p(
                            budget,
                            spec.link_bandwidth_gbps,
                            spec.p2p_bandwidth_gbps,
                            spec.fault_latency_ns,
                        );
                    }
                    ctx.attach_uvm(uvm);
                }
                let handle =
                    attach_nv_backend(&mut ctx, &backend, self.sampling_rate, wants_device)?;
                (RuntimeBox::Cuda(ctx), handle)
            }
        };

        if let Some(handle) = &profiler {
            handle.set_sink(Box::new(HubSink::with_spine(
                Arc::clone(&hub),
                self.spine_mode,
                self.spine_config,
            )));
        }

        Ok(PastaSession {
            runtime,
            hub,
            profiler,
            managed_allocator,
            specs,
            backend,
            sampling_rate: self.sampling_rate,
            wants_device,
            spine_mode: self.spine_mode,
            spine_config: self.spine_config,
            parallel: self.parallel,
            lane_overhead: OverheadBreakdown::default(),
            lane_records: 0,
            lane_uvm: BTreeMap::new(),
            lane_failures: Vec::new(),
            pool_watermark: Arc::new(AtomicUsize::new(0)),
        })
    }
}

/// Attaches the chosen NVIDIA backend to a CUDA context (shared between
/// the builder and per-lane parallel contexts).
fn attach_nv_backend(
    ctx: &mut CudaContext,
    backend: &BackendChoice,
    sampling: u32,
    wants_device: bool,
) -> Result<Option<ProfilerHandle>, PastaError> {
    Ok(match backend {
        BackendChoice::Sanitizer(cfg) if wants_device => Some(vendor_nv::sanitizer::attach(
            ctx,
            cfg.clone().with_sampling(sampling),
        )),
        BackendChoice::Nvbit(cfg) if wants_device => Some(vendor_nv::nvbit::attach(
            ctx,
            cfg.clone().with_sampling(sampling),
        )),
        BackendChoice::HostOnly | BackendChoice::Sanitizer(_) | BackendChoice::Nvbit(_) => None,
        BackendChoice::RocProfiler(_) => {
            return Err(PastaError::Config(
                "ROCProfiler cannot attach to NVIDIA devices".into(),
            ))
        }
    })
}

/// Attaches the chosen AMD backend to a HIP context.
fn attach_roc_backend(
    ctx: &mut HipContext,
    backend: &BackendChoice,
    wants_device: bool,
) -> Result<Option<ProfilerHandle>, PastaError> {
    Ok(match backend {
        BackendChoice::RocProfiler(cfg) if wants_device => {
            Some(vendor_amd::rocprofiler::attach(ctx, cfg.clone()))
        }
        BackendChoice::HostOnly | BackendChoice::RocProfiler(_) => None,
        _ => {
            return Err(PastaError::Config(
                "NVIDIA backends cannot attach to AMD devices".into(),
            ))
        }
    })
}

/// A live PASTA profiling session.
pub struct PastaSession {
    runtime: RuntimeBox,
    hub: SharedHub,
    profiler: Option<ProfilerHandle>,
    managed_allocator: bool,
    /// Device specs the session was built with (parallel lanes replicate
    /// them into per-lane contexts).
    specs: Vec<DeviceSpec>,
    /// Resolved backend choice, reused by parallel lanes.
    backend: BackendChoice,
    sampling_rate: u32,
    wants_device: bool,
    /// How this session's sinks hand events to their shards (parallel
    /// lanes inherit it).
    spine_mode: SpineMode,
    /// Ring geometry for every sink this session creates (parallel lanes
    /// inherit it).
    spine_config: SpineConfig,
    /// Thread budgets for parallel regions and the session-end merge.
    parallel: ParallelConfig,
    /// Overhead accumulated by finished parallel-lane profilers.
    lane_overhead: OverheadBreakdown,
    /// Records observed by finished parallel-lane profilers.
    lane_records: u64,
    /// Per-device UVM statistics contributed by finished parallel lanes
    /// (the unmerged breakdown behind [`UvmReport::per_device`]).
    lane_uvm: BTreeMap<DeviceId, UvmStats>,
    /// Contained lane/workload panics accumulated by this session's runs
    /// (overlaid onto [`MergedReport::lane_failures`]; cleared by
    /// [`PastaSession::reset_analysis`]).
    lane_failures: Vec<LaneFailure>,
    /// Peak pooled lane concurrency across this session's parallel
    /// regions ([`PastaSession::pool_high_water`]): every lane pool this
    /// session runs `fetch_max`es its per-pool high water here, so the
    /// reading is per-session — immune to other sessions' pools, unlike
    /// the process-global `lane_exec::pool_high_water`.
    pool_watermark: Arc<AtomicUsize>,
}

impl std::fmt::Debug for PastaSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PastaSession")
            .field("profiler_attached", &self.profiler.is_some())
            .field("managed_allocator", &self.managed_allocator)
            .finish()
    }
}

impl PastaSession {
    /// Creates a fresh instrumented framework session over the runtime
    /// and hands it to `f` — the shared substrate of every run path.
    fn with_instrumented_session<R>(
        &mut self,
        f: impl FnOnce(&mut Session<'_>) -> Result<R, PastaError>,
    ) -> Result<R, PastaError> {
        let hub = Arc::clone(&self.hub);
        let managed = self.managed_allocator;
        let rt = self.runtime.as_runtime_mut();
        let alloc_config = if managed {
            AllocatorConfig::managed()
        } else {
            AllocatorConfig::default()
        };
        let backend = dl_framework::backend::BackendProfile::for_vendor(rt.vendor());
        let mut session = Session::with_config(rt, backend, alloc_config);
        attach_session(&mut session, hub);
        f(&mut session)
    }

    /// Profiles an arbitrary [`Workload`] — the primary entry point.
    ///
    /// The workload runs against a fresh instrumented framework session;
    /// everything it does (tensor traffic, operators, kernel launches,
    /// region annotations) flows through the event pipeline to the
    /// registered tools, and the run is summarized as a
    /// [`SessionReport`].
    ///
    /// # Errors
    ///
    /// Propagates workload failures. A *panicking* workload is contained
    /// at the session boundary instead of unwinding through the caller:
    /// the run fails with [`PastaError::Salvaged`], whose report carries
    /// everything the tools accumulated up to the panic plus the typed
    /// [`LaneFailure`] (device `None`: a sequential workload belongs to
    /// no lane).
    pub fn run(&mut self, workload: &mut dyn Workload) -> Result<SessionReport, PastaError> {
        let overhead_before = self.overhead();
        let records_before = self.records();
        let name = workload.name().to_owned();
        let (result, elapsed, alloc) = self.with_instrumented_session(|session| {
            let t0 = session.runtime().host_time();
            let result = match catch_unwind(AssertUnwindSafe(|| {
                workload.run(&mut WorkloadCx::new(session))
            })) {
                Ok(result) => result,
                Err(payload) => Err(PastaError::Lane(LaneFailure {
                    device: None,
                    payload: panic_message(payload.as_ref()),
                })),
            };
            // Drain in-flight device work — also on failure or panic — so
            // profiled_time covers it and it cannot leak into the next
            // run's measurement window; workloads themselves need not
            // synchronize.
            session.synchronize();
            let t1 = session.runtime().host_time();
            Ok((result, t1 - t0, session.allocator_stats()))
        })?;
        let stats = result.map_err(|e| self.salvage(e))?;
        Ok(SessionReport {
            workload: stats.label.unwrap_or(name),
            kernel_launches: stats.kernel_launches,
            profiled_time: accel_sim::SimTime(elapsed),
            overhead: self.overhead_delta(overhead_before),
            records: self.records() - records_before,
            peak_allocated: alloc.peak_allocated,
            peak_reserved: alloc.peak_reserved,
        })
    }

    /// Runs `steps` batches/iterations of a zoo model at the paper's batch
    /// size, under full instrumentation. Forwards a
    /// [`ModelWorkload`] through [`PastaSession::run`].
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn run_model(
        &mut self,
        model: ModelZoo,
        kind: RunKind,
        steps: usize,
    ) -> Result<SessionReport, PastaError> {
        self.run_model_scaled(model, kind, steps, 1)
    }

    /// Like [`PastaSession::run_model`] with the batch divided by
    /// `batch_divisor` (tests and quick runs).
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn run_model_scaled(
        &mut self,
        model: ModelZoo,
        kind: RunKind,
        steps: usize,
        batch_divisor: usize,
    ) -> Result<SessionReport, PastaError> {
        let mut workload = ModelWorkload::new(model, kind)
            .steps(steps)
            .batch_divisor(batch_divisor);
        self.run(&mut workload)
    }

    /// Runs a closure against an instrumented framework session,
    /// returning its value directly (no [`SessionReport`]). Prefer
    /// [`crate::FnWorkload`] + [`PastaSession::run`] when a report is
    /// wanted.
    ///
    /// # Errors
    ///
    /// Propagates errors from `f`.
    pub fn run_custom<R>(
        &mut self,
        f: impl FnOnce(&mut Session<'_>) -> Result<R, accel_sim::AccelError>,
    ) -> Result<R, PastaError> {
        self.with_instrumented_session(|session| f(session).map_err(PastaError::from))
    }

    /// Reports from all registered tools, merged across device shards in
    /// ascending device order (single-shard sessions report directly).
    pub fn reports(&self) -> Vec<ToolReport> {
        self.hub.merged_reports()
    }

    /// The full merged report: merged tools, the per-device breakdown,
    /// the total event count, (when UVM is attached) the merged UVM
    /// statistics, and the session's health overlay — quarantined tools
    /// and contained lane failures — the session-end merge stage of the
    /// sharded hub.
    pub fn merged_report(&self) -> MergedReport {
        let mut report = self.hub.merged_report();
        report.uvm = self.uvm_report();
        report.lane_failures = self.lane_failures.clone();
        report
    }

    /// Converts a contained panic ([`PastaError::Lane`]) into
    /// [`PastaError::Salvaged`]: the failure is recorded on the session
    /// and the error carries the merged report over every surviving
    /// lane's state at the moment of salvage. Other errors pass through.
    fn salvage(&mut self, e: PastaError) -> PastaError {
        match e {
            PastaError::Lane(failure) => {
                self.lane_failures.push(failure.clone());
                PastaError::Salvaged(Box::new(SalvagedRun {
                    failures: vec![failure],
                    report: self.merged_report(),
                }))
            }
            other => other,
        }
    }

    /// The session's shared event hub. Trace writers bind to it so
    /// recorders stay detachable through the hub handle even while the
    /// session is borrowed elsewhere (or already gone).
    pub fn hub(&self) -> &SharedHub {
        &self.hub
    }

    /// Contained lane/workload panics accumulated by this session's runs,
    /// in detection order (cleared by [`PastaSession::reset_analysis`]).
    pub fn lane_failures(&self) -> &[LaneFailure] {
        &self.lane_failures
    }

    /// Quarantine records across every shard, deduplicated by tool name.
    /// Empty on a healthy run.
    pub fn quarantined_tools(&self) -> Vec<ToolQuarantine> {
        self.hub.quarantines()
    }

    /// Strict health check: errors with [`PastaError::ToolQuarantined`]
    /// if any tool was disarmed after a panicking callback — for callers
    /// that treat a degraded toolset as failure rather than reading the
    /// quarantine list off the merged report.
    pub fn check_tool_health(&self) -> Result<(), PastaError> {
        match self.hub.quarantines().into_iter().next() {
            Some(q) => Err(PastaError::ToolQuarantined(q)),
            None => Ok(()),
        }
    }

    /// The UVM slice of [`PastaSession::merged_report`]: the session
    /// manager's totals (finished parallel lanes already folded in,
    /// ascending device id) plus the unmerged per-lane breakdown. `None`
    /// when the session was built without [`UvmSetup`].
    pub fn uvm_report(&self) -> Option<UvmReport> {
        self.runtime.uvm_manager().map(|manager| UvmReport {
            stats: manager.stats(),
            per_device: self
                .lane_uvm
                .iter()
                .map(|(&device, &stats)| (device, stats))
                .collect(),
            peer_bytes: manager.peer_matrix(),
        })
    }

    /// Runs `f` against the named tool downcast to `T`, on the *primary*
    /// shard (device 0). On sharded multi-device sessions this sees only
    /// device 0's slice of the stream — use
    /// [`PastaSession::with_merged_tool`] for the cross-device view.
    pub fn with_tool_mut<T: Tool + 'static, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        self.hub.primary().tools.with_tool_mut(name, f)
    }

    /// Runs `f` against the merged cross-shard view of the named tool
    /// (every device's instance folded into a fresh copy, ascending
    /// device order).
    pub fn with_merged_tool<T: Tool + 'static, R>(
        &self,
        name: &str,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        self.hub.with_merged_tool(name, f)
    }

    /// Cumulative instrumentation overhead so far, including overhead
    /// charged by finished parallel lanes.
    pub fn overhead(&self) -> OverheadBreakdown {
        let mut b = self
            .profiler
            .as_ref()
            .map(ProfilerHandle::breakdown)
            .unwrap_or_default();
        b.collection_ns += self.lane_overhead.collection_ns;
        b.transfer_ns += self.lane_overhead.transfer_ns;
        b.analysis_ns += self.lane_overhead.analysis_ns;
        b.setup_ns += self.lane_overhead.setup_ns;
        b
    }

    fn overhead_delta(&self, before: OverheadBreakdown) -> OverheadBreakdown {
        let now = self.overhead();
        OverheadBreakdown {
            collection_ns: now.collection_ns - before.collection_ns,
            transfer_ns: now.transfer_ns - before.transfer_ns,
            analysis_ns: now.analysis_ns - before.analysis_ns,
            setup_ns: now.setup_ns - before.setup_ns,
        }
    }

    /// Trace records observed so far (post-sampling), including records
    /// collected by finished parallel lanes.
    pub fn records(&self) -> u64 {
        self.profiler
            .as_ref()
            .map(ProfilerHandle::records_total)
            .unwrap_or(0)
            + self.lane_records
    }

    /// Events processed by the dispatch unit so far, across all shards.
    pub fn events_processed(&self) -> u64 {
        self.hub.events_processed()
    }

    /// Attaches one trace recorder per hub shard (ascending device order).
    /// Every event a shard processes from now on — sequential runs and
    /// [`PastaSession::run_parallel`] lanes alike, since lanes feed the
    /// same shared hub — is offered to that shard's recorder. This is the
    /// capture attachment point of the `pasta-trace` subsystem.
    pub fn attach_event_recorders(
        &self,
        make: impl FnMut(DeviceId) -> Box<dyn crate::processor::EventRecorder>,
    ) {
        self.hub.attach_recorders(make);
    }

    /// Detaches every shard's trace recorder, ascending device order.
    pub fn detach_event_recorders(
        &self,
    ) -> Vec<(DeviceId, Box<dyn crate::processor::EventRecorder>)> {
        self.hub.detach_recorders()
    }

    /// Installs a UVM prefetch plan to replay before upcoming launches.
    pub fn set_prefetch_plan(&mut self, plan: PrefetchPlan) {
        match &mut self.runtime {
            RuntimeBox::Cuda(c) => c.set_prefetch_plan(plan),
            RuntimeBox::Hip(h) => h.set_prefetch_plan(plan),
        }
    }

    /// Restricts a device's usable memory (oversubscription methodology).
    pub fn limit_device_memory(&mut self, device: DeviceId, bytes: u64) {
        match &mut self.runtime {
            RuntimeBox::Cuda(c) => c
                .engine_mut()
                .device_mut(device)
                .limit_usable_capacity(bytes),
            RuntimeBox::Hip(h) => h
                .engine_mut()
                .device_mut(device)
                .limit_usable_capacity(bytes),
        }
    }

    /// The knob-selected kernel and its aggregate, merged across shards.
    pub fn knob_selection(&self, knob: Knob) -> Option<(String, KernelAggregate)> {
        self.hub
            .merged_knobs()
            .select(knob)
            .map(|(n, a)| (n.to_string(), a))
    }

    /// The captured cross-layer stack for a kernel, if any (shards
    /// consulted in ascending device order; first capture wins).
    pub fn cross_layer_stack(&self, kernel: &str) -> Option<CrossLayerStack> {
        self.hub.merged_stack_for(kernel)
    }

    /// Resets all tools, knobs, stacks and UVM counters on every shard
    /// (the runtime keeps running; UVM residency and budgets stay).
    pub fn reset_analysis(&mut self) {
        self.hub.reset_all();
        if let Some(p) = &self.profiler {
            p.reset();
        }
        self.lane_overhead = OverheadBreakdown::default();
        self.lane_records = 0;
        self.lane_uvm.clear();
        self.lane_failures.clear();
        if let Some(manager) = self.runtime.uvm_manager_mut() {
            manager.reset_stats();
            // Hotness resets with the stats: a pre-reset parallel region
            // concatenated lane time axes into the accumulator, and
            // leaving them would make stats and hotness describe
            // different analysis windows.
            manager.reset_hotness();
        }
    }

    /// Peak number of *this session's* pooled lane tasks that ran
    /// concurrently since the session was built (or the last
    /// [`PastaSession::reset_pool_high_water`]): every lane pool a
    /// parallel region of this session runs — `run_parallel_each`'s own
    /// pool and any `drive_lanes` pool the stamped lanes ride inside
    /// [`PastaSession::run_parallel`] — folds its per-pool high water in
    /// with a `fetch_max`. Unlike the process-global
    /// `lane_exec::pool_high_water`, concurrent sessions (or parallel
    /// tests) cannot contaminate this reading.
    pub fn pool_high_water(&self) -> usize {
        self.pool_watermark.load(Ordering::Acquire)
    }

    /// Resets [`PastaSession::pool_high_water`] to zero.
    pub fn reset_pool_high_water(&mut self) {
        self.pool_watermark.store(0, Ordering::Release);
    }

    /// Creates one instrumented per-device framework session ("lane") per
    /// entry of `devices` and hands them to `f` — the substrate of the
    /// genuinely concurrent multi-device workloads: each lane owns its
    /// own vendor context (full device list, pinned to its device) and
    /// its own profiler whose sink feeds that device's hub shard, so
    /// `f` can drive every lane from its own OS thread with no shared
    /// lock on the emission path.
    ///
    /// Lanes inherit the session's backend, sampling and allocator
    /// configuration. A session built with [`UvmSetup`] replicates its
    /// UVM manager into every lane via [`UvmManager::fork`] — same
    /// config, budgets and registrations, fresh residency and counters —
    /// so lane tensor traffic faults and migrates with no cross-lane
    /// lock; lane UVM state merges back into the session manager
    /// (ascending device id) when `f` returns, and surfaces through
    /// [`PastaSession::uvm_report`]. Lane instrumentation overhead and
    /// record counts fold into
    /// [`PastaSession::overhead`]/[`PastaSession::records`] when `f`
    /// returns.
    ///
    /// # Errors
    ///
    /// [`PastaError::Config`] on an empty device list, a duplicate
    /// [`DeviceId`] (each device gets exactly one lane), or a device the
    /// session was not built with; otherwise propagates failures from
    /// `f`.
    pub fn run_parallel<R>(
        &mut self,
        devices: &[DeviceId],
        f: impl FnOnce(&mut [DeviceLane<'_>]) -> Result<R, AccelError>,
    ) -> Result<R, PastaError> {
        self.run_parallel_impl(devices, DrainPolicy::Background, f)
    }

    fn run_parallel_impl<R>(
        &mut self,
        devices: &[DeviceId],
        drain_policy: DrainPolicy,
        f: impl FnOnce(&mut [DeviceLane<'_>]) -> Result<R, AccelError>,
    ) -> Result<R, PastaError> {
        if devices.is_empty() {
            return Err(PastaError::Config(
                "parallel device list is empty: pass at least one DeviceId".into(),
            ));
        }
        for (i, device) in devices.iter().enumerate() {
            if devices[..i].contains(device) {
                return Err(PastaError::Config(format!(
                    "duplicate device {device} in the parallel device list: \
                     each device gets exactly one lane"
                )));
            }
            if device.index() >= self.specs.len() {
                return Err(PastaError::Config(format!(
                    "device {device} is not part of this session ({} device(s) configured)",
                    self.specs.len()
                )));
            }
        }

        // Per-lane contexts: the full device list each, pinned to the
        // lane's device, host callbacks and (when tools want device
        // events) a profiler+sink wired into the shared hub.
        let mut contexts = Vec::with_capacity(devices.len());
        let mut handles = Vec::new();
        for &device in devices {
            let (ctx, handle) = match self.specs[0].vendor {
                Vendor::Amd => {
                    let mut ctx = HipContext::new(self.specs.clone());
                    ctx.set_device(device).map_err(PastaError::from)?;
                    attach_roc(&mut ctx, Arc::clone(&self.hub));
                    let handle = attach_roc_backend(&mut ctx, &self.backend, self.wants_device)?;
                    (RuntimeBox::Hip(ctx), handle)
                }
                _ => {
                    let mut ctx = CudaContext::new(self.specs.clone());
                    ctx.set_device(device).map_err(PastaError::from)?;
                    attach_nv(&mut ctx, Arc::clone(&self.hub));
                    let handle = attach_nv_backend(
                        &mut ctx,
                        &self.backend,
                        self.sampling_rate,
                        self.wants_device,
                    )?;
                    (RuntimeBox::Cuda(ctx), handle)
                }
            };
            if let Some(handle) = &handle {
                handle.set_sink(Box::new(HubSink::with_spine(
                    Arc::clone(&self.hub),
                    self.spine_mode,
                    self.spine_config,
                )));
            }
            // A UVM session replicates into its lanes: each lane carries a
            // manager forked from the session's (same config, budgets and
            // registrations, fresh residency and counters), so managed
            // allocations made on the lane fault, migrate and evict with
            // no lock shared across lanes. Lane state merges back into
            // the session manager when `f` returns.
            let mut ctx = ctx;
            if let Some(manager) = self.runtime.uvm_manager() {
                ctx.attach_uvm(manager.fork(device));
            }
            contexts.push(ctx);
            if let Some(handle) = handle {
                handles.push(handle);
            }
        }

        let alloc_config = if self.managed_allocator {
            AllocatorConfig::managed()
        } else {
            AllocatorConfig::default()
        };
        let mut lanes: Vec<DeviceLane<'_>> = contexts
            .iter_mut()
            .zip(devices)
            .map(|(ctx, &device)| {
                let rt = ctx.as_runtime_mut();
                let backend = dl_framework::backend::BackendProfile::for_vendor(rt.vendor());
                let mut session = Session::with_config(rt, backend, alloc_config.clone());
                attach_session(&mut session, Arc::clone(&self.hub));
                DeviceLane::pin(device, session)
                    .map(|mut lane| {
                        // Stamp the session's lane budget so pooled lane
                        // schedules (dl-framework's `drive_lanes`) inherit
                        // it without a config parameter of their own, and
                        // the session's watermark so every pool the lanes
                        // ride reports its per-pool high water back here.
                        lane.set_pool_limit(self.parallel.max_lane_threads);
                        lane.set_pool_watermark(Arc::clone(&self.pool_watermark));
                        lane
                    })
                    .map_err(PastaError::from)
            })
            .collect::<Result<_, _>>()?;

        // Lane drain scheduling: with the ring spine, a bounded set of
        // background drainers (at most `max_drain_threads`, `0` = the
        // machine's parallelism — never more than one per device) keeps
        // the lane shards' rings drained while the emitters run, so tool
        // dispatch leaves the emission critical path. Pool-idle regions
        // ([`PastaSession::run_parallel_each`]) skip the threads entirely
        // — their idle lane workers sweep the shards instead. Inline-spine
        // (or host-only) sessions also skip them: there is nothing to
        // drain off-path. Either way the spine's producer-side
        // backpressure keeps the path lossless without any drainer.
        let drain_width = if self.parallel.max_drain_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.parallel.max_drain_threads
        };
        let drainer = (self.wants_device
            && self.spine_mode == SpineMode::Ring
            && drain_policy == DrainPolicy::Background)
            .then(|| SpineDrainer::start_bounded(Arc::clone(&self.hub), devices, drain_width));

        // The orchestration closure is contained like a lane: a panic
        // unwinding out of it (or out of an unguarded thread it joined)
        // becomes a typed failure, and the harvest below still runs so the
        // surviving lanes' shards and UVM managers merge into the session.
        let result = match catch_unwind(AssertUnwindSafe(|| f(&mut lanes))) {
            Ok(result) => result.map_err(PastaError::from),
            Err(payload) => Err(PastaError::Lane(LaneFailure {
                device: None,
                payload: panic_message(payload.as_ref()),
            })),
        };
        // Settle lane clocks (also on failure) so nothing stays in flight,
        // then fold lane instrumentation accounting into the session.
        for lane in &mut lanes {
            lane.session.synchronize();
        }
        drop(lanes);
        // Stop the drainers, then make every pushed event visible before
        // the harvest below — lane sinks were dropped with the contexts
        // further down, but their rings stay registered until drained
        // empty, so a panicked lane's events still reach the salvaged
        // report. (Contexts drop after the quiesce-on-lock harvest paths
        // run; the explicit quiesce here covers everything pushed so far.)
        if let Some(drainer) = drainer {
            drainer.stop();
        }
        self.hub.quiesce();
        // Harvest the lane UVM managers and fold them into the session
        // manager in ascending device id — the same deterministic order
        // as the session-end tool merge, regardless of the order the
        // caller listed the devices in. The fold runs through the shared
        // merge plan: lane managers tree-reduce pairwise in device order
        // (`UvmManager::merge` is associative — stats sum, hotness lanes
        // replay their recording logs in device order, shared-range
        // import is order-independent), then the single combined manager
        // merges into the session's, byte-identical to the linear chain
        // this replaces but with an O(N/W + log N) critical path at 64+
        // lanes. Per-device stats are captured *before* the reduction —
        // the tree consumes the lane managers.
        let mut lane_managers: Vec<(DeviceId, UvmManager)> = Vec::new();
        for (ctx, &device) in contexts.iter_mut().zip(devices) {
            let Some(model) = ctx.engine_mut().take_residency() else {
                continue;
            };
            if let Ok(manager) = model.into_any().downcast::<UvmManager>() {
                lane_managers.push((device, *manager));
            }
        }
        lane_managers.sort_by_key(|&(device, _)| device);
        if !lane_managers.is_empty() {
            if let Some(session_manager) = self.runtime.uvm_manager_mut() {
                for (device, lane_manager) in &lane_managers {
                    self.lane_uvm
                        .entry(*device)
                        .or_default()
                        .merge_from(&lane_manager.stats());
                }
                let managers: Vec<UvmManager> = lane_managers.into_iter().map(|(_, m)| m).collect();
                if let Some(combined) =
                    crate::merge::tree_reduce(managers, self.parallel.max_merge_threads, |a, b| {
                        a.merge(&b)
                    })
                {
                    session_manager.merge(&combined);
                }
            }
        }
        for handle in handles {
            let b = handle.breakdown();
            self.lane_overhead.collection_ns += b.collection_ns;
            self.lane_overhead.transfer_ns += b.transfer_ns;
            self.lane_overhead.analysis_ns += b.analysis_ns;
            self.lane_overhead.setup_ns += b.setup_ns;
            self.lane_records += handle.records_total();
        }
        // Lane sinks die with their contexts; a ring-mode sink's Drop
        // spills partial spill buffers onto its rings (even for a lane
        // that panicked mid-launch). Quiesce afterwards so that tail is
        // visible to the salvaged report `salvage` may build below.
        drop(contexts);
        self.hub.quiesce();
        result.map_err(|e| self.salvage(e))
    }

    /// Runs `work` once per lane on the bounded lane pool, each lane's
    /// panic contained at the lane boundary — the fault-isolated sibling
    /// of hand-rolling thread orchestration inside
    /// [`PastaSession::run_parallel`].
    ///
    /// Lanes are multiplexed onto at most
    /// [`ParallelConfig::max_lane_threads`] pooled workers (named
    /// `lane-dev{N}` after the first lane each runs), so a 256-device
    /// region costs a handful of OS threads, not 256. No background
    /// drainer threads are spawned either: a pool worker that runs out of
    /// lanes sweeps the lane shards' spine rings until the stragglers
    /// finish, and the spine's producer-side backpressure covers the rest
    /// — losslessly, so thread budgets never change the merged bytes.
    ///
    /// `work` receives the lane's index into `devices` and the lane
    /// itself. A panicking lane becomes a [`LaneFailure`] attributed to
    /// its device; the surviving lanes run to completion and their shard
    /// and UVM state still merges into the session, so the resulting
    /// [`PastaError::Salvaged`] carries a usable report. When several
    /// lanes fail, the first panic (ascending device position in
    /// `devices`) is reported.
    ///
    /// # Errors
    ///
    /// The same configuration errors as [`PastaSession::run_parallel`];
    /// [`PastaError::Salvaged`] when a lane panicked; the first lane
    /// error otherwise.
    pub fn run_parallel_each(
        &mut self,
        devices: &[DeviceId],
        work: impl Fn(usize, &mut DeviceLane<'_>) -> Result<(), AccelError> + Sync,
    ) -> Result<(), PastaError> {
        let hub = Arc::clone(&self.hub);
        let drain_devices: Option<Vec<DeviceId>> =
            (self.wants_device && self.spine_mode == SpineMode::Ring).then(|| devices.to_vec());
        let pool_limit = self.parallel.max_lane_threads;
        let watermark = Arc::clone(&self.pool_watermark);
        self.run_parallel_impl(devices, DrainPolicy::PoolIdle, |lanes| {
            let idle = drain_devices.as_ref().map(|ds| {
                let hub = &hub;
                move || -> bool {
                    ds.iter()
                        .map(|&d| hub.shard_for(d).try_drain())
                        .sum::<u64>()
                        > 0
                }
            });
            let work = &work;
            let tasks: Vec<lane_exec::PoolTask<'_, ()>> = lanes
                .iter_mut()
                .enumerate()
                .map(|(i, lane)| lane_exec::PoolTask {
                    device: lane.device(),
                    run: Box::new(move || work(i, lane)),
                })
                .collect();
            let run = lane_exec::run_pool(
                pool_limit,
                tasks,
                idle.as_ref().map(|h| h as &(dyn Fn() -> bool + Sync)),
            );
            watermark.fetch_max(run.high_water, Ordering::AcqRel);
            // An idle-hook panic (`run.idle_panic`) is contained inside
            // the pool and the hook disarmed; correctness needs nothing
            // more — producer-side backpressure plus the session's final
            // quiesce drain every ring the disarmed sweeper abandoned.
            let results = run.results;
            // A contained panic is the root cause — report it ahead of
            // secondary errors surviving lanes hit because a peer died.
            for r in &results {
                if let Err(e @ AccelError::LanePanic { .. }) = r {
                    return Err(e.clone());
                }
            }
            for r in results {
                r?;
            }
            Ok(())
        })
    }
}

/// Who keeps the spine rings drained while a parallel region's lanes run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainPolicy {
    /// A bounded set of dedicated drainer threads
    /// ([`SpineDrainer::start_bounded`]) — for [`PastaSession::run_parallel`],
    /// whose orchestration closure is opaque to the session.
    Background,
    /// No drainer threads: the caller's lane pool sweeps the shards from
    /// idle workers ([`PastaSession::run_parallel_each`]).
    PoolIdle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::LaunchCounter;

    #[test]
    fn build_defaults_to_one_a100() {
        let session = Pasta::builder().build().unwrap();
        assert!(format!("{session:?}").contains("PastaSession"));
    }

    #[test]
    fn mixed_vendors_rejected() {
        let r = Pasta::builder()
            .devices(vec![DeviceSpec::a100_80gb(), DeviceSpec::mi300x()])
            .build();
        assert!(matches!(r, Err(PastaError::Config(_))));
    }

    #[test]
    fn explicitly_empty_device_list_rejected() {
        let r = Pasta::builder().devices(vec![]).build();
        let Err(PastaError::Config(msg)) = r else {
            panic!("empty device list must be a config error");
        };
        assert!(msg.contains("empty"), "unhelpful message: {msg}");
    }

    #[test]
    fn duplicate_tool_names_rejected() {
        let r = Pasta::builder()
            .a100()
            .tool(LaunchCounter::default())
            .tool(LaunchCounter::default())
            .build();
        let Err(PastaError::Config(msg)) = r else {
            panic!("duplicate tool names must be a config error");
        };
        assert!(msg.contains("launch-counter"), "unhelpful message: {msg}");
    }

    #[test]
    fn rocprofiler_on_nvidia_rejected() {
        let r = Pasta::builder()
            .a100()
            .tool(DeviceHungry)
            .backend(BackendChoice::RocProfiler(RocProfilerConfig::default()))
            .build();
        assert!(matches!(r, Err(PastaError::Config(_))));
    }

    struct DeviceHungry;
    impl Tool for DeviceHungry {
        fn name(&self) -> &str {
            "hungry"
        }
        fn interest(&self) -> crate::tool::Interest {
            crate::tool::Interest::all()
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn coarse_tools_skip_device_instrumentation() {
        let session = Pasta::builder()
            .rtx_3060()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        assert!(
            session.profiler.is_none(),
            "no device-event interest → no probe → near-zero overhead"
        );
    }

    #[test]
    fn device_tools_attach_profiler() {
        let session = Pasta::builder()
            .rtx_3060()
            .tool(DeviceHungry)
            .build()
            .unwrap();
        assert!(session.profiler.is_some());
    }

    #[test]
    fn run_model_produces_report_and_tool_state() {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let report = session
            .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, 16)
            .unwrap();
        assert!(report.kernel_launches > 40);
        assert!(report.profiled_time.as_nanos() > 0);
        let n = session
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, report.kernel_launches);
        assert!(session.events_processed() > report.kernel_launches);
    }

    #[test]
    fn run_model_and_run_workload_report_identically() {
        let run_via = |use_trait: bool| {
            let mut session = Pasta::builder()
                .rtx_3060()
                .tool(LaunchCounter::default())
                .build()
                .unwrap();
            if use_trait {
                let mut w = ModelWorkload::new(ModelZoo::ResNet18, RunKind::Inference)
                    .steps(1)
                    .batch_divisor(16);
                session.run(&mut w).unwrap()
            } else {
                session
                    .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, 16)
                    .unwrap()
            }
        };
        assert_eq!(
            run_via(false),
            run_via(true),
            "run_model must forward through run() byte-identically"
        );
    }

    #[test]
    fn kernel_sweep_workload_profiles_raw_kernels() {
        use crate::workload::KernelSweepWorkload;
        use accel_sim::{Dim3, KernelBody, KernelDesc};
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let mut sweep = KernelSweepWorkload::new("sweep")
            .kernel(
                KernelDesc::new("custom_a", Dim3::linear(8), Dim3::linear(128))
                    .body(KernelBody::compute(1 << 20)),
            )
            .kernel(
                KernelDesc::new("custom_b", Dim3::linear(4), Dim3::linear(64))
                    .body(KernelBody::compute(1 << 18)),
            )
            .repeats(3);
        let report = session.run(&mut sweep).unwrap();
        assert_eq!(report.workload, "sweep");
        assert_eq!(report.kernel_launches, 6);
        assert!(report.profiled_time.as_nanos() > 0);
        let n = session
            .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(n, 6, "raw launches reach the tools like model kernels");
    }

    #[test]
    fn fn_workload_runs_and_labels_report() {
        use crate::workload::{FnWorkload, WorkloadStats};
        let mut session = Pasta::builder().rtx_3060().build().unwrap();
        let mut w = FnWorkload::new("closure", |cx| {
            let t = cx
                .alloc_tensor(&[256], dl_framework::dtype::DType::F32)
                .map_err(PastaError::from)?;
            cx.free_tensor(&t);
            Ok(WorkloadStats::new(0).labeled("relabeled"))
        });
        let report = session.run(&mut w).unwrap();
        assert_eq!(report.workload, "relabeled");
        assert!(report.peak_allocated >= 1024);
    }

    #[test]
    fn failed_workload_device_time_does_not_leak_into_next_run() {
        use crate::workload::{FnWorkload, WorkloadStats};
        use accel_sim::{Dim3, KernelBody, KernelDesc};
        let mut session = Pasta::builder().rtx_3060().build().unwrap();
        let mut failing = FnWorkload::new("fails-mid-flight", |cx| {
            // A long kernel is in flight when the workload errors out.
            let desc = KernelDesc::new("long_kernel", Dim3::linear(4096), Dim3::linear(256))
                .body(KernelBody::compute(1 << 28));
            cx.launch_kernel(desc)?;
            Err(PastaError::Config("injected failure".into()))
        });
        let failed = session.run(&mut failing);
        assert!(failed.is_err());
        let mut idle = FnWorkload::new("idle", |_cx| Ok(WorkloadStats::new(0)));
        let report = session.run(&mut idle).unwrap();
        assert!(
            report.profiled_time.as_nanos() < 10_000,
            "stale device time from the failed run leaked into the idle run: {}",
            report.profiled_time
        );
    }

    #[test]
    fn workload_cx_exposes_uvm_manager() {
        use crate::workload::{FnWorkload, WorkloadStats};
        let mut with_uvm = Pasta::builder()
            .rtx_3060()
            .uvm(UvmSetup::default())
            .build()
            .unwrap();
        let mut probe = FnWorkload::new("uvm-probe", |cx| {
            assert!(cx.uvm().is_some(), "UVM sessions expose the manager");
            let resident = cx.uvm_mut().unwrap().resident_bytes(accel_sim::DeviceId(0));
            let _ = resident;
            Ok(WorkloadStats::new(0))
        });
        with_uvm.run(&mut probe).unwrap();

        let mut without = Pasta::builder().rtx_3060().build().unwrap();
        let mut probe = FnWorkload::new("no-uvm-probe", |cx| {
            assert!(cx.uvm().is_none(), "no UVM setup → no manager");
            Ok(WorkloadStats::new(0))
        });
        without.run(&mut probe).unwrap();
    }

    #[test]
    fn amd_session_runs_models_too() {
        let mut session = Pasta::builder()
            .mi300x()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let report = session
            .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
            .unwrap();
        assert!(report.kernel_launches > 50);
    }

    #[test]
    fn multi_device_sessions_shard_when_tools_fork() {
        let session = Pasta::builder()
            .a100_x2()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        assert!(
            session.hub.is_sharded(),
            "forkable tools → one shard/device"
        );
        assert_eq!(session.hub.shards().len(), 2);

        let single = Pasta::builder()
            .a100()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        assert!(!single.hub.is_sharded(), "one device → one shard");

        let fallback = Pasta::builder()
            .a100_x2()
            .tool(DeviceHungry)
            .build()
            .unwrap();
        assert!(
            !fallback.hub.is_sharded(),
            "a tool that declines fork() keeps the single shared shard"
        );
    }

    #[test]
    fn run_parallel_rejects_bad_device_lists() {
        let mut session = Pasta::builder()
            .a100_x2()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();

        let err = session
            .run_parallel(&[], |_| Ok(()))
            .expect_err("empty device list");
        assert!(
            matches!(&err, PastaError::Config(m) if m.contains("empty")),
            "{err}"
        );

        let err = session
            .run_parallel(&[DeviceId(0), DeviceId(1), DeviceId(0)], |_| Ok(()))
            .expect_err("duplicate device");
        let PastaError::Config(msg) = &err else {
            panic!("duplicate DeviceId must be a config error, got {err}");
        };
        assert!(msg.contains("duplicate device gpu0"), "unhelpful: {msg}");
        assert!(
            !msg.contains("  "),
            "message has collapsed whitespace: {msg}"
        );

        let err = session
            .run_parallel(&[DeviceId(7)], |_| Ok(()))
            .expect_err("unknown device");
        assert!(
            matches!(&err, PastaError::Config(m) if m.contains("gpu7")),
            "{err}"
        );
    }

    #[test]
    fn run_parallel_lanes_feed_per_device_shards_and_merge() {
        use dl_framework::dtype::DType;
        let mut session = Pasta::builder()
            .a100_x2()
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        let devices = [DeviceId(0), DeviceId(1)];
        session
            .run_parallel(&devices, |lanes| {
                assert_eq!(lanes.len(), 2);
                // Drive both lanes from their own threads: tensor traffic
                // and kernel launches race into the hub.
                std::thread::scope(|scope| {
                    for lane in lanes.iter_mut() {
                        scope.spawn(move || {
                            let s = &mut lane.session;
                            let t = s.alloc_tensor(&[1024], DType::F32).unwrap();
                            for _ in 0..5 {
                                let desc = accel_sim::KernelDesc::new(
                                    "lane_kernel",
                                    accel_sim::Dim3::linear(8),
                                    accel_sim::Dim3::linear(128),
                                )
                                .arg(t.ptr, t.bytes)
                                .body(accel_sim::KernelBody::compute(1 << 16));
                                s.launch(desc).unwrap();
                            }
                            s.free_tensor(&t);
                        });
                    }
                });
                Ok(())
            })
            .unwrap();
        // Each shard saw its own lane's 5 launches...
        for shard in session.hub.shards() {
            let n = shard
                .lock()
                .tools
                .with_tool_mut("launch-counter", |t: &mut LaunchCounter| t.launches)
                .unwrap();
            assert_eq!(n, 5, "shard {} launches", shard.device());
        }
        // ...and the merged view folds both, deterministically.
        let total = session
            .with_merged_tool("launch-counter", |t: &LaunchCounter| t.launches)
            .unwrap();
        assert_eq!(total, 10);
        let merged = session.merged_report();
        assert_eq!(merged.per_device.len(), 2);
        assert_eq!(merged, session.merged_report(), "merge is repeatable");
        // The merged knob view sums both devices' launches.
        let (kernel, agg) = session.knob_selection(Knob::MaxCalledKernel).unwrap();
        assert_eq!(kernel, "lane_kernel");
        assert_eq!(agg.calls, 10);
    }

    #[test]
    fn run_parallel_forks_and_merges_lane_uvm_managers() {
        use dl_framework::dtype::DType;
        let mut session = Pasta::builder()
            .a100_x2()
            .uvm(UvmSetup::default())
            .tool(LaunchCounter::default())
            .build()
            .unwrap();
        assert!(session.uvm_report().is_some(), "UVM session reports UVM");
        let devices = [DeviceId(0), DeviceId(1)];
        session
            .run_parallel(&devices, |lanes| {
                std::thread::scope(|scope| {
                    for lane in lanes.iter_mut() {
                        scope.spawn(move || {
                            // Lane-local UVM access through the workload
                            // surface: the manager is the lane's own fork.
                            let mut cx = crate::workload::WorkloadCx::for_lane(lane);
                            assert!(cx.uvm().is_some(), "lanes carry forked managers");
                            let s = cx.session();
                            let t = s.alloc_tensor(&[1 << 20], DType::F32).unwrap();
                            let desc = accel_sim::KernelDesc::new(
                                "uvm_lane_kernel",
                                accel_sim::Dim3::linear(64),
                                accel_sim::Dim3::linear(128),
                            )
                            .arg(t.ptr, t.bytes)
                            .body(accel_sim::KernelBody::streaming(t.bytes / 2, t.bytes / 2));
                            let rec = s.launch(desc).unwrap();
                            assert!(rec.uvm_faults > 0, "managed tensors fault cold");
                            s.free_tensor(&t);
                        });
                    }
                });
                Ok(())
            })
            .unwrap();
        let report = session.uvm_report().expect("uvm attached");
        assert_eq!(report.per_device.len(), 2, "one UVM entry per lane");
        assert_eq!(report.per_device[0].0, DeviceId(0));
        assert_eq!(report.per_device[1].0, DeviceId(1));
        let mut sum = uvm_sim::UvmStats::default();
        for (device, stats) in &report.per_device {
            assert!(stats.fault_groups > 0, "{device} faulted");
            sum.merge_from(stats);
        }
        assert_eq!(
            report.stats, sum,
            "session totals equal the lane fold (no other UVM activity ran)"
        );
        let merged = session.merged_report();
        assert_eq!(merged.uvm, Some(report), "merged report carries the slice");
        // Analysis reset clears the UVM window too — counters, the
        // per-lane breakdown and the hotness clock together.
        session.reset_analysis();
        let after = session.uvm_report().expect("manager still attached");
        assert_eq!(after.stats, uvm_sim::UvmStats::default());
        assert!(after.per_device.is_empty());
        let mut probe = crate::workload::FnWorkload::new("hotness-probe", |cx| {
            let hotness = cx.uvm().expect("uvm attached").hotness();
            assert_eq!(hotness.events_seen(), 0, "hotness clock reset with stats");
            Ok(crate::workload::WorkloadStats::new(0))
        });
        session.run(&mut probe).unwrap();
    }

    #[test]
    fn knobs_and_stacks_populate_during_runs() {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(DeviceHungry)
            .capture_knob(Some(Knob::MaxMemReferencedKernel))
            .build()
            .unwrap();
        session
            .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
            .unwrap();
        let (kernel, agg) = session
            .knob_selection(Knob::MaxMemReferencedKernel)
            .expect("knob selects a kernel");
        assert!(agg.memory_records > 0);
        let stack = session
            .cross_layer_stack(&kernel)
            .expect("stack captured for the hot kernel");
        assert!(!stack.native.is_empty());
        assert!(stack.render().contains("Python"));
    }
}
