//! The lock-free event spine: bounded SPSC rings between sinks and shards.
//!
//! The serialization decompositions in `BENCH_multi_device.json` showed
//! the under-mutex drain (`process_class_batch` under each shard's lock)
//! at 80–94% of an instrumented launch. Sinks are per-launch and shards
//! are per-device, so every sink→shard pair is single-producer /
//! single-consumer *by construction* — the mutex on the emission path was
//! pure overhead. This module replaces it:
//!
//! * [`EventRing`] — a bounded lock-free SPSC ring of [`SpineMsg`]s
//!   (single events or whole per-class batches), paired with a reverse
//!   *free ring* that recycles drained batch buffers back to the
//!   producer, keeping the steady state allocation-free.
//! * [`ShardSpine`] — the per-shard registry of rings feeding it. Rings
//!   are drained **only while holding the shard's processor lock** (the
//!   "consumer = lock holder" protocol), which serializes consumers
//!   without adding any atomics beyond the ring's own head/tail.
//! * [`SpineDrainer`] — background threads that keep shards drained
//!   during [`crate::PastaSession::run_parallel`], taking tool dispatch
//!   off the emitters' critical path.
//!
//! **Backpressure is explicit and lossless.** A producer that finds its
//! ring full (or the buffer pool empty) takes the shard lock itself,
//! drains every pending ring — its own older messages first, preserving
//! per-ring FIFO — and processes the overflowing message inline. Events
//! are *never* dropped: anything pushed before a harvest is observed by
//! [`crate::hub::Hub::quiesce`], which every report/reset/recorder path
//! runs through (every shard lock acquisition drains first).
//!
//! **Ordering.** Within one ring, messages pop in push order; a sink's
//! event stream therefore reaches its shard's `EventProcessor` in exactly
//! the order the old inline drain delivered it, which is why the merged
//! reports stay byte-identical to the mutex-spine reference (the
//! `concurrency`/`uvm_p2p`/`fault_containment` suites pin this).

use crate::event::{Event, EventClass};
use crate::hub::{Hub, SharedHub};
use crate::processor::EventProcessor;
use accel_sim::DeviceId;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// How a [`crate::hub::HubSink`] hands events to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpineMode {
    /// Bounded lock-free SPSC ring per sink→shard pair: emission pushes
    /// and returns; the shard side (a [`SpineDrainer`], a backpressured
    /// producer, or the next harvest) runs tool dispatch. The default.
    Ring,
    /// The pre-spine reference: drain into the shard's `EventProcessor`
    /// under its mutex on the emission path. Kept selectable so the
    /// differential byte-identity tests and the bench decompositions can
    /// price the ring against it.
    Inline,
}

/// Ring geometry. The defaults suit the shipping sink; tests shrink them
/// to force wraparound and backpressure within a handful of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpineConfig {
    /// Message slots per ring. A slot holds a whole batch, so the default
    /// buffers `ring_slots × batch_events` fine-grained events.
    pub ring_slots: usize,
    /// Batch buffers preallocated into the free ring.
    pub pool_buffers: usize,
    /// Events per batch buffer (the sink's flush threshold).
    pub batch_events: usize,
}

impl Default for SpineConfig {
    fn default() -> Self {
        SpineConfig {
            ring_slots: 64,
            pool_buffers: 8,
            batch_events: 256,
        }
    }
}

/// One message on the spine: a single out-of-band event or a whole
/// per-class batch (the sink's spill buffer, moved — not copied).
#[derive(Debug)]
pub enum SpineMsg {
    /// A single event (kernel begin/end markers and other per-launch
    /// events that must not wait for a batch to fill).
    One(Event),
    /// A filled per-class spill buffer; drained through one
    /// dispatch-row lookup and its buffer recycled via the free ring.
    Batch(EventClass, Vec<Event>),
}

impl SpineMsg {
    /// Events carried by this message.
    pub fn len(&self) -> usize {
        match self {
            SpineMsg::One(_) => 1,
            SpineMsg::Batch(_, events) => events.len(),
        }
    }

    /// True when the message carries no events (an empty batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bounded lock-free single-producer/single-consumer queue.
///
/// # Safety contract
///
/// `push` must be called by at most one thread at a time, and `pop` by at
/// most one thread at a time (they may be different threads, and either
/// side may migrate between threads as long as calls never overlap). The
/// spine upholds this structurally: the push side of an [`EventRing`] is
/// owned by one sink, and the pop side only runs while holding the
/// shard's processor lock.
struct Spsc<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (monotonic; slot index is `head % cap`).
    head: AtomicUsize,
    /// Next slot to push (monotonic).
    tail: AtomicUsize,
}

// SAFETY: `slots` is only touched through the SPSC protocol above —
// the producer writes slots in `[head, head+cap)` it observed free, the
// consumer reads slots in `[head, tail)` the producer published with a
// release store, and the roles are never concurrent with themselves.
unsafe impl<T: Send> Send for Spsc<T> {}
unsafe impl<T: Send> Sync for Spsc<T> {}

impl<T> Spsc<T> {
    fn new(capacity: usize) -> Spsc<T> {
        let capacity = capacity.max(1);
        Spsc {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: publishes `value`, or returns it when the ring is
    /// full (the caller applies backpressure — values are never dropped).
    fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's release in `pop`: once we see
        // head advanced past a slot, its old value is fully read out.
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.capacity() {
            return Err(value);
        }
        // SAFETY: slot `tail % cap` is outside the live `[head, tail)`
        // window, so the consumer is not reading it, and we are the only
        // producer (type contract).
        unsafe {
            (*self.slots[tail % self.capacity()].get()).write(value);
        }
        // Release publishes the slot write to the consumer's acquire load.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: takes the oldest value, or `None` when empty.
    fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        // Acquire pairs with the producer's release in `push`.
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head % cap` is inside the live window the
        // producer published, and we are the only consumer (type
        // contract), so reading the value out exactly once is sound.
        let value = unsafe { (*self.slots[head % self.capacity()].get()).assume_init_read() };
        // Release hands the slot back to the producer's acquire load.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Messages currently queued (a racy snapshot — exact only when one
    /// side is quiescent).
    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

impl<T> std::fmt::Debug for Spsc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spsc")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Drop for Spsc<T> {
    fn drop(&mut self) {
        // `&mut self`: both roles are exclusively ours now.
        while self.pop().is_some() {}
    }
}

/// One sink→shard SPSC pair: the forward message ring plus the reverse
/// *free ring* of recycled batch buffers.
///
/// # Roles
///
/// The **producer** (one sink) calls [`EventRing::push`],
/// [`EventRing::take_buffer`] and [`EventRing::close`]. The **consumer**
/// (whoever holds the owning shard's processor lock) calls
/// [`EventRing::pop`] and [`EventRing::recycle`]. Both roles are
/// single-threaded at any instant; violating that voids the SPSC safety
/// contract.
#[derive(Debug)]
pub struct EventRing {
    msgs: Spsc<SpineMsg>,
    /// Cleared batch buffers flowing consumer → producer. Sized to hold
    /// every circulating buffer (pool + the sink's two working buffers)
    /// so a full drain can always recycle without dropping capacity.
    free: Spsc<Vec<Event>>,
    /// Producer dropped: once also empty, the shard registry prunes it.
    closed: AtomicBool,
    /// Events per batch buffer, so recycling can restore capacity.
    batch_events: usize,
}

impl EventRing {
    /// A ring with the given geometry, its free ring preloaded with
    /// `pool_buffers` empty batch buffers.
    pub fn with_config(config: &SpineConfig) -> EventRing {
        let ring = EventRing {
            msgs: Spsc::new(config.ring_slots),
            free: Spsc::new(config.pool_buffers + 2),
            closed: AtomicBool::new(false),
            batch_events: config.batch_events.max(1),
        };
        for _ in 0..config.pool_buffers.max(1) {
            // Construction precedes sharing, so pushing here is sound.
            let _ = ring.free.push(Vec::with_capacity(ring.batch_events));
        }
        ring
    }

    /// Producer: queues `msg`, or hands it back when the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `msg` unchanged on a full ring — the caller must apply
    /// backpressure (drain the shard itself, or park and retry); dropping
    /// the message would break the lossless contract.
    pub fn push(&self, msg: SpineMsg) -> Result<(), SpineMsg> {
        self.msgs.push(msg)
    }

    /// Consumer: takes the oldest queued message.
    pub fn pop(&self) -> Option<SpineMsg> {
        self.msgs.pop()
    }

    /// Producer: a recycled (cleared, preallocated) batch buffer, if the
    /// consumer has returned one.
    pub fn take_buffer(&self) -> Option<Vec<Event>> {
        self.free.pop()
    }

    /// Consumer: clears `buf` and returns it to the producer through the
    /// free ring. A buffer that no longer fits (closed producer already
    /// reclaimed capacity) is simply dropped — capacity, not data.
    pub fn recycle(&self, mut buf: Vec<Event>) {
        buf.clear();
        let _ = self.free.push(buf);
    }

    /// Producer: marks the ring closed. Pushes before the close are still
    /// drained (close is a release store; the registry checks it with an
    /// acquire load *after* seeing the ring empty).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True when the producer dropped the ring.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// True when no messages are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.msgs.len() == 0
    }

    /// Messages currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.msgs.len()
    }
}

/// Drains one ring into `processor`, recycling batch buffers. The caller
/// must hold the owning shard's processor lock (consumer role).
fn drain_ring(ring: &EventRing, processor: &mut EventProcessor) -> u64 {
    let mut drained = 0;
    while let Some(msg) = ring.pop() {
        match msg {
            SpineMsg::One(event) => {
                processor.process(&event);
                drained += 1;
            }
            SpineMsg::Batch(class, events) => {
                processor.process_class_batch(class, &events);
                drained += events.len() as u64;
                ring.recycle(events);
            }
        }
    }
    drained
}

/// The per-shard side of the spine: every ring feeding one shard.
///
/// Registration is sink-side and rare (one per sink×device); draining
/// happens under the shard's processor lock, which is what makes the
/// per-ring consumer role single-threaded. The registry mutex is a leaf
/// lock — only ever taken alone or under the processor lock.
#[derive(Debug, Default)]
pub(crate) struct ShardSpine {
    rings: Mutex<Vec<Arc<EventRing>>>,
}

impl ShardSpine {
    /// Adds a ring feeding this shard.
    pub(crate) fn register(&self, ring: Arc<EventRing>) {
        self.rings.lock().push(ring);
    }

    /// Drains every registered ring into `processor` and prunes rings
    /// whose producer closed them and that are empty (a closed ring
    /// cannot refill: the producer's pushes happened-before its close).
    ///
    /// The caller must hold the owning shard's processor lock.
    pub(crate) fn drain(&self, processor: &mut EventProcessor) -> u64 {
        let mut rings = self.rings.lock();
        let mut drained = 0;
        rings.retain(|ring| {
            drained += drain_ring(ring, processor);
            !(ring.is_closed() && ring.is_empty())
        });
        drained
    }
}

/// Background shard drainers for parallel regions: a bounded set of
/// threads (at most one per lane device, fewer under
/// [`SpineDrainer::start_bounded`]) keeps the lane shards' rings drained
/// while emitters run, so tool dispatch (80–94% of an instrumented
/// launch) leaves the emission critical path. Emitters that outrun a
/// drainer fall back to the lossless backpressure path; a stopped (or
/// never-started) drainer costs correctness nothing — the next harvest
/// drains.
///
/// `stop` is cooperative: the drainer finishes its sweep, and
/// [`SpineDrainer::stop`] (also run on drop) joins the threads. The
/// final sweep is not relied upon — harvest paths quiesce regardless.
#[derive(Debug)]
pub struct SpineDrainer {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl SpineDrainer {
    /// Spawns one drainer per device in `devices`, servicing `hub`'s
    /// shards. Spawn failures are tolerated silently: the spine is
    /// correct without drainers, just slower under contention.
    pub fn start(hub: SharedHub, devices: &[DeviceId]) -> SpineDrainer {
        Self::start_bounded(hub, devices, devices.len())
    }

    /// Spawns at most `max_threads` drainer threads (`0` = one per
    /// device), each servicing an interleaved slice of `devices`: thread
    /// `j` sweeps `devices[j], devices[j + W], …`, so at 256 lanes the
    /// drain side costs `max_drain_threads` OS threads instead of 256.
    /// Threads are named `drain-dev{N}` after the first device they
    /// service. Spawn failures are tolerated silently — the spine is
    /// correct without drainers, just slower under contention.
    pub fn start_bounded(hub: SharedHub, devices: &[DeviceId], max_threads: usize) -> SpineDrainer {
        let stop = Arc::new(AtomicBool::new(false));
        let width = if max_threads == 0 {
            devices.len()
        } else {
            max_threads.min(devices.len())
        };
        let threads = (0..width)
            .filter_map(|j| {
                let slice: Vec<DeviceId> = devices
                    .iter()
                    .copied()
                    .skip(j)
                    .step_by(width.max(1))
                    .collect();
                let first = *slice.first()?;
                let hub: Arc<Hub> = Arc::clone(&hub);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("drain-dev{}", first.index()))
                    .spawn(move || drain_loop(&hub, &slice, &stop))
                    .ok()
            })
            .collect();
        SpineDrainer { stop, threads }
    }

    /// Signals the drainers to finish and joins them.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            // A drainer that panicked (it runs no tool code, so this is
            // defensive) is simply gone; harvests still quiesce.
            let _ = t.join();
        }
    }
}

impl Drop for SpineDrainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One drainer thread's loop: opportunistically sweep every assigned
/// shard (skipping beats where an emitter or harvest holds a lock),
/// backing off from a spin to short sleeps when the whole slice runs dry.
fn drain_loop(hub: &Hub, devices: &[DeviceId], stop: &AtomicBool) {
    let mut idle_beats = 0u32;
    while !stop.load(Ordering::Acquire) {
        let drained: u64 = devices
            .iter()
            .map(|&device| hub.shard_for(device).try_drain())
            .sum();
        if drained > 0 {
            idle_beats = 0;
        } else {
            idle_beats = idle_beats.saturating_add(1);
            if idle_beats < 16 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::LaunchId;

    fn event(i: u64) -> Event {
        Event::Instructions {
            launch: LaunchId(0),
            count: i,
        }
    }

    #[test]
    fn spsc_push_pop_fifo_with_wraparound() {
        let ring: Spsc<u64> = Spsc::new(4);
        // Several wrap cycles with interleaved push/pop.
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for round in 0..10 {
            let burst = 1 + (round % 4);
            for _ in 0..burst {
                ring.push(next_push).unwrap();
                next_push += 1;
            }
            for _ in 0..burst {
                assert_eq!(ring.pop(), Some(next_pop));
                next_pop += 1;
            }
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn spsc_full_ring_returns_value_instead_of_dropping() {
        let ring: Spsc<u64> = Spsc::new(2);
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.push(3), Err(3), "full ring hands the value back");
        assert_eq!(ring.pop(), Some(1));
        ring.push(3).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn spsc_drop_releases_queued_values() {
        // Arc refcounts observe the drop of undrained values.
        let probe = Arc::new(());
        {
            let ring: Spsc<Arc<()>> = Spsc::new(8);
            ring.push(Arc::clone(&probe)).unwrap();
            ring.push(Arc::clone(&probe)).unwrap();
            assert_eq!(Arc::strong_count(&probe), 3);
        }
        assert_eq!(Arc::strong_count(&probe), 1, "drop drained the ring");
    }

    #[test]
    fn spsc_cross_thread_stream_is_fifo() {
        // Producer on one thread, consumer on another, ring far smaller
        // than the stream: every value arrives, in order, across many
        // wraparounds.
        let ring: Arc<Spsc<u64>> = Arc::new(Spsc::new(4));
        const N: u64 = 50_000;
        std::thread::scope(|scope| {
            let producer = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match producer.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expected = 0u64;
            while expected < N {
                if let Some(v) = ring.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn event_ring_recycles_batch_buffers() {
        let config = SpineConfig {
            ring_slots: 4,
            pool_buffers: 2,
            batch_events: 16,
        };
        let ring = EventRing::with_config(&config);
        let mut processor = EventProcessor::new();

        let buf = ring.take_buffer().expect("pool preloaded");
        assert_eq!(buf.capacity(), 16);
        let mut buf = buf;
        buf.push(event(1));
        buf.push(event(2));
        ring.push(SpineMsg::Batch(EventClass::DeviceControl, buf))
            .unwrap();
        assert_eq!(drain_ring(&ring, &mut processor), 2);
        assert_eq!(processor.events_processed(), 2);

        // The drained buffer came back through the free ring, cleared,
        // with its capacity intact: the remaining preloaded buffer plus
        // the recycled one = 2 takes before the pool runs dry.
        let mut takes = 0;
        while let Some(b) = ring.take_buffer() {
            assert!(b.is_empty());
            assert!(b.capacity() >= 16);
            takes += 1;
        }
        assert_eq!(takes, 2);
    }

    #[test]
    fn closed_empty_rings_are_pruned_after_final_drain() {
        let spine = ShardSpine::default();
        let ring = Arc::new(EventRing::with_config(&SpineConfig::default()));
        spine.register(Arc::clone(&ring));
        ring.push(SpineMsg::One(event(7))).unwrap();
        ring.close();

        let mut processor = EventProcessor::new();
        assert_eq!(spine.drain(&mut processor), 1, "pushes before close drain");
        assert_eq!(processor.events_processed(), 1);
        assert_eq!(
            spine.rings.lock().len(),
            0,
            "closed-and-empty ring pruned from the registry"
        );

        // An open ring survives drains even when empty.
        let live = Arc::new(EventRing::with_config(&SpineConfig::default()));
        spine.register(Arc::clone(&live));
        assert_eq!(spine.drain(&mut processor), 0);
        assert_eq!(spine.rings.lock().len(), 1);
    }
}
