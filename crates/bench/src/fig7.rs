//! Figure 7: kernel invocation frequency distribution across all model
//! inference and training runs.

use crate::scale::ExpScale;
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::{Pasta, PastaError};
use pasta_tools::KernelFrequencyTool;
use serde::{Deserialize, Serialize};

/// Frequencies of one (model, run-kind) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreqResult {
    /// Model abbreviation.
    pub model: String,
    /// `inference` / `train`.
    pub run: String,
    /// Total kernel launches.
    pub total: u64,
    /// Distinct kernel symbols.
    pub unique: usize,
    /// Top kernels with counts, descending.
    pub top: Vec<(String, u64)>,
}

/// Runs the Figure 7 experiment.
///
/// # Errors
///
/// Propagates session failures.
pub fn run(scale: ExpScale) -> Result<Vec<FreqResult>, PastaError> {
    let mut out = Vec::new();
    for model in ModelZoo::all() {
        for (kind, steps) in [
            (RunKind::Inference, scale.inference_steps),
            (RunKind::Training, scale.training_steps),
        ] {
            let mut session = Pasta::builder()
                .a100()
                .tool(KernelFrequencyTool::new())
                .build()?;
            session.run_model_scaled(model, kind, steps, scale.batch_divisor)?;
            let (total, unique, top) = session
                .with_tool_mut("kernel-frequency", |t: &mut KernelFrequencyTool| {
                    let top = t
                        .top(8)
                        .into_iter()
                        .map(|(k, c)| (k.to_string(), c))
                        .collect();
                    (t.total(), t.unique(), top)
                })
                .expect("tool registered");
            out.push(FreqResult {
                model: model.spec().abbr.to_owned(),
                run: kind.label().to_owned(),
                total,
                unique,
                top,
            });
        }
    }
    Ok(out)
}

/// Renders the Fig. 7 rows (bubble sizes = counts in the paper; here the
/// counts themselves, per model × run).
pub fn render(results: &[FreqResult]) -> String {
    let mut s =
        String::from("Figure 7: kernel invocation frequency (per model, inference+training)\n");
    for r in results {
        s.push_str(&format!(
            "\n{} [{}] — {} launches, {} unique kernels\n",
            r.model, r.run, r.total, r.unique
        ));
        for (kernel, count) in &r.top {
            s.push_str(&format!("    {count:>8}x {kernel}\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_skewed_distribution() {
        let results = run(ExpScale::quick()).unwrap();
        assert_eq!(results.len(), 12, "6 models x 2 run kinds");
        for r in &results {
            assert!(r.total > 0, "{} {} launched nothing", r.model, r.run);
            assert!(r.unique >= 3);
            // The paper's observation: few kernels dominate.
            let top_share = r.top[0].1 as f64 / r.total as f64;
            assert!(
                top_share > 0.10,
                "{} {}: hottest kernel only {top_share}",
                r.model,
                r.run
            );
        }
        // Training launches more kernels than inference per step; with our
        // scales, AlexNet training total is comparable to inference — just
        // assert both kinds exist for every model.
        let rendered = render(&results);
        assert!(rendered.contains("AN [inference]"));
        assert!(rendered.contains("GPT-2 [train]"));
    }
}
