//! # pasta-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§V), each with a
//! `run()` that regenerates the result and a `render()` producing the rows
//! the paper reports. Binaries under `src/bin/` print them; Criterion
//! benches under `benches/` time the framework itself.
//!
//! Experiment scale comes from [`scale::ExpScale`]: `PASTA_SCALE=quick`
//! shrinks batch sizes and step counts for smoke runs, the default `full`
//! uses the paper's batch sizes (Table IV).

pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig4;
pub mod fig7;
pub mod fig9_10;
pub mod scale;
pub mod table5;

pub use scale::ExpScale;
