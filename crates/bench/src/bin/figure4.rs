//! Regenerates Figure 4 (cross-layer call stack of the hot kernel).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = pasta_bench::fig4::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig4::render(&result));
    Ok(())
}
