//! Regenerates Figure 14 (GPT-2 training memory, NVIDIA vs AMD).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = pasta_bench::fig14::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig14::render(&result));
    Ok(())
}
