//! Runs every experiment in sequence and prints all tables/figures —
//! the artifact-evaluation "run everything" entry point.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use pasta_bench as b;
    let scale = b::ExpScale::from_env();
    println!("PASTA experiment suite (scale {scale:?})\n");

    print!("{}\n\n", b::fig4::render(&b::fig4::run(scale)?));
    print!("{}\n\n", b::fig7::render(&b::fig7::run(scale)?));
    print!("{}\n\n", b::table5::render(&b::table5::run(scale)?));
    let overheads = b::fig9_10::run(scale)?;
    print!("{}\n\n", b::fig9_10::render_fig9(&overheads));
    print!("{}\n\n", b::fig9_10::render_fig10(&overheads));
    print!(
        "{}\n\n",
        b::fig11_12::render("Figure 11", &b::fig11_12::run(1.0, scale)?)
    );
    print!(
        "{}\n\n",
        b::fig11_12::render("Figure 12", &b::fig11_12::run(3.0, scale)?)
    );
    print!("{}\n\n", b::fig13::render(&b::fig13::run(scale)?));
    print!("{}\n\n", b::fig14::render(&b::fig14::run(scale)?));
    print!("{}\n\n", b::fig15::render(&b::fig15::run(scale)?));
    Ok(())
}
