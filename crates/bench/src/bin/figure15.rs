//! Regenerates Figure 15 (Megatron GPT-2 345M per-GPU memory, DP/TP/PP).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let results = pasta_bench::fig15::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig15::render(&results));
    Ok(())
}
