//! Regenerates Figure 13 (BERT access hotness over time).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = pasta_bench::fig13::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig13::render(&result));
    Ok(())
}
