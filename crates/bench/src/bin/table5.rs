//! Regenerates Table V (memory characteristics of the DNN models).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = pasta_bench::table5::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::table5::render(&rows));
    Ok(())
}
