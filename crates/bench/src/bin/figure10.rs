//! Regenerates Figure 10 (profiling-time breakdown).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let results = pasta_bench::fig9_10::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig9_10::render_fig10(&results));
    Ok(())
}
