//! Regenerates Figure 7 (kernel invocation frequency distribution).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let results = pasta_bench::fig7::run(pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig7::render(&results));
    Ok(())
}
