//! Regenerates Figure 12 (UVM prefetching at 3x oversubscription).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let results = pasta_bench::fig11_12::run(3.0, pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig11_12::render("Figure 12", &results));
    Ok(())
}
