//! Regenerates Figure 11 (UVM prefetching, no oversubscription).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let results = pasta_bench::fig11_12::run(1.0, pasta_bench::ExpScale::from_env())?;
    print!("{}", pasta_bench::fig11_12::render("Figure 11", &results));
    Ok(())
}
