//! Figures 11 and 12: object-level vs tensor-level UVM prefetching,
//! without (Fig. 11) and with 3× (Fig. 12) memory oversubscription.
//!
//! Methodology follows §V-A: the device's usable memory is limited to
//! `footprint / oversubscription` by measuring the footprint first, and
//! execution times are normalized to the no-prefetch baseline.

use crate::scale::ExpScale;
use accel_sim::DeviceSpec;
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::{Pasta, PastaError, UvmSetup};
use pasta_tools::UvmPrefetchAdvisor;
use serde::{Deserialize, Serialize};
use uvm_sim::PrefetchGranularity;

/// One model × device × oversubscription measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchResult {
    /// Model abbreviation.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Oversubscription factor (1 = none).
    pub oversubscription: f64,
    /// Baseline (no prefetch) execution, ns.
    pub baseline_ns: u64,
    /// Object-level prefetch execution, ns.
    pub object_ns: u64,
    /// Tensor-level prefetch execution, ns.
    pub tensor_ns: u64,
}

impl PrefetchResult {
    /// Object-level time normalized to the baseline.
    pub fn object_norm(&self) -> f64 {
        self.object_ns as f64 / self.baseline_ns.max(1) as f64
    }

    /// Tensor-level time normalized to the baseline.
    pub fn tensor_norm(&self) -> f64 {
        self.tensor_ns as f64 / self.baseline_ns.max(1) as f64
    }
}

fn uvm_session(spec: DeviceSpec, budget: u64) -> Result<pasta_core::PastaSession, PastaError> {
    Pasta::builder()
        .devices(vec![spec])
        .tool(UvmPrefetchAdvisor::new())
        .uvm(UvmSetup {
            budget_bytes: Some(budget),
            ..UvmSetup::default()
        })
        .build()
}

/// Measures one (model, device, oversubscription) cell.
///
/// # Errors
///
/// Propagates session failures.
pub fn measure(
    model: ModelZoo,
    device_name: &str,
    spec: DeviceSpec,
    oversubscription: f64,
    scale: ExpScale,
) -> Result<PrefetchResult, PastaError> {
    let steps = scale.inference_steps.min(3);
    let run = |budget: u64,
               plan: Option<uvm_sim::PrefetchPlan>|
     -> Result<(u64, UvmPrefetchAdvisor, u64), PastaError> {
        let mut session = uvm_session(spec.clone(), budget)?;
        if let Some(p) = plan {
            session.set_prefetch_plan(p);
        }
        let r = session.run_model_scaled(model, RunKind::Inference, steps, scale.batch_divisor)?;
        let advisor = session
            .with_tool_mut("uvm-prefetch-advisor", |t: &mut UvmPrefetchAdvisor| {
                std::mem::take(t)
            })
            .expect("advisor registered");
        Ok((r.profiled_time.as_nanos(), advisor, r.peak_reserved))
    };

    // Footprint measurement (plenty of memory), then budget per §V-A.
    let (_, _, footprint) = run(spec.mem_capacity, None)?;
    let budget = ((footprint as f64 / oversubscription) as u64).max(8 << 20);

    let (baseline_ns, advisor, _) = run(budget, None)?;
    let (object_ns, _, _) = run(
        budget,
        Some(advisor.build_plan(PrefetchGranularity::Object)),
    )?;
    let (tensor_ns, _, _) = run(
        budget,
        Some(advisor.build_plan(PrefetchGranularity::Tensor)),
    )?;
    Ok(PrefetchResult {
        model: model.spec().abbr.to_owned(),
        device: device_name.to_owned(),
        oversubscription,
        baseline_ns,
        object_ns,
        tensor_ns,
    })
}

/// Runs one full figure (all models × both devices) at the given
/// oversubscription factor: 1.0 regenerates Fig. 11, 3.0 Fig. 12.
///
/// # Errors
///
/// Propagates session failures.
pub fn run(oversubscription: f64, scale: ExpScale) -> Result<Vec<PrefetchResult>, PastaError> {
    let mut out = Vec::new();
    for model in ModelZoo::all() {
        for (name, spec) in [
            ("3060", DeviceSpec::rtx_3060()),
            ("A100", DeviceSpec::a100_80gb()),
        ] {
            out.push(measure(model, name, spec, oversubscription, scale)?);
        }
    }
    Ok(out)
}

/// Renders a figure's rows plus the cross-model average.
pub fn render(figure: &str, results: &[PrefetchResult]) -> String {
    let mut s = format!(
        "{figure}: execution time normalized to no-prefetch \
         (oversubscription {:.0}x)\n\
         model     device  object-level  tensor-level\n",
        results.first().map_or(0.0, |r| r.oversubscription)
    );
    for r in results {
        s.push_str(&format!(
            "{:<9} {:<7} {:>12.2}  {:>12.2}\n",
            r.model,
            r.device,
            r.object_norm(),
            r.tensor_norm()
        ));
    }
    for device in ["3060", "A100"] {
        let of: Vec<f64> = results
            .iter()
            .filter(|r| r.device == device)
            .map(PrefetchResult::object_norm)
            .collect();
        let tf: Vec<f64> = results
            .iter()
            .filter(|r| r.device == device)
            .map(PrefetchResult::tensor_norm)
            .collect();
        if !of.is_empty() {
            s.push_str(&format!(
                "Avg. {device:<7}: object {:.2}  tensor {:.2}\n",
                of.iter().sum::<f64>() / of.len() as f64,
                tf.iter().sum::<f64>() / tf.len() as f64
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_cell_reproduces_both_regimes() {
        // One full-ish batch keeps the cold-fault-vs-thrash balance the
        // figure sweep sees; quick-scale's tiny batch plus two steps damps
        // the oversubscription effect.
        let scale = ExpScale {
            batch_divisor: 4,
            inference_steps: 1,
            training_steps: 1,
        };
        let no_over = measure(
            ModelZoo::ResNet18,
            "3060",
            DeviceSpec::rtx_3060(),
            1.0,
            scale,
        )
        .unwrap();
        assert!(
            no_over.object_norm() < 1.0 && no_over.tensor_norm() < 1.0,
            "both prefetchers win without oversubscription: {} / {}",
            no_over.object_norm(),
            no_over.tensor_norm()
        );
        let over3 = measure(
            ModelZoo::ResNet18,
            "3060",
            DeviceSpec::rtx_3060(),
            3.0,
            scale,
        )
        .unwrap();
        assert!(
            over3.object_norm() > 1.2,
            "object-level thrashes at 3x: {}",
            over3.object_norm()
        );
        assert!(
            over3.tensor_norm() < over3.object_norm(),
            "tensor-level beats object-level at 3x"
        );
    }
}
