//! Figure 15: per-GPU memory usage in one Megatron GPT-2 345M training
//! iteration under data, tensor and pipeline parallelism on two A100s.

use crate::scale::ExpScale;
use accel_sim::DeviceId;
use dl_framework::parallel::{self, Parallelism};
use pasta_core::{Pasta, PastaError};
use pasta_tools::{MemoryTimelineTool, TimelinePoint};
use serde::{Deserialize, Serialize};

/// One strategy's per-GPU curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyCurves {
    /// Strategy label.
    pub strategy: String,
    /// Per-GPU memory curves.
    pub series: [Vec<TimelinePoint>; 2],
    /// Per-GPU peaks, bytes.
    pub peaks: [u64; 2],
    /// Per-GPU tensor event counts.
    pub events: [usize; 2],
}

impl StrategyCurves {
    /// GPU1/GPU0 peak ratio (1.0 = symmetric).
    pub fn asymmetry(&self) -> f64 {
        self.peaks[1] as f64 / self.peaks[0].max(1) as f64
    }
}

/// Runs one strategy.
///
/// # Errors
///
/// Propagates session failures.
pub fn measure(strategy: Parallelism, scale: ExpScale) -> Result<StrategyCurves, PastaError> {
    let batch = (4 / scale.batch_divisor.min(4)).max(1);
    let mut session = Pasta::builder()
        .a100_x2()
        .tool(MemoryTimelineTool::new())
        .build()?;
    // Each device runs on its own lane thread; tensor events from the two
    // GPUs land in their own hub shards and merge deterministically below.
    session.run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
        parallel::train_iter(lanes, strategy, batch).map(|_| ())
    })?;
    let (s0, s1, p0, p1, e0, e1) = session
        .with_merged_tool("memory-timeline", |t: &MemoryTimelineTool| {
            (
                t.series_for(DeviceId(0)).to_vec(),
                t.series_for(DeviceId(1)).to_vec(),
                t.peak_for(DeviceId(0)),
                t.peak_for(DeviceId(1)),
                t.events_for(DeviceId(0)),
                t.events_for(DeviceId(1)),
            )
        })
        .expect("tool registered");
    Ok(StrategyCurves {
        strategy: strategy.label().to_owned(),
        series: [s0, s1],
        peaks: [p0, p1],
        events: [e0, e1],
    })
}

/// Runs all three strategies.
///
/// # Errors
///
/// Propagates session failures.
pub fn run(scale: ExpScale) -> Result<Vec<StrategyCurves>, PastaError> {
    [
        Parallelism::Data,
        Parallelism::Tensor,
        Parallelism::Pipeline,
    ]
    .into_iter()
    .map(|s| measure(s, scale))
    .collect()
}

/// Renders the Fig. 15 summary.
pub fn render(results: &[StrategyCurves]) -> String {
    let mut s = String::from("Figure 15: Megatron GPT-2 345M per-GPU memory, one train iter\n");
    for r in results {
        s.push_str(&format!(
            "  {:<18} GPU0 peak {:>5} MB ({:>6} events) | GPU1 peak {:>5} MB ({:>6} events) | GPU1/GPU0 {:.2}\n",
            r.strategy,
            r.peaks[0] >> 20,
            r.events[0],
            r.peaks[1] >> 20,
            r.events[1],
            r.asymmetry()
        ));
    }
    if let (Some(dp), Some(tp)) = (
        results.iter().find(|r| r.strategy.starts_with("data")),
        results.iter().find(|r| r.strategy.starts_with("tensor")),
    ) {
        s.push_str(&format!(
            "  TP/DP peak ratio {:.2} (paper: about half — model sharding)\n",
            tp.peaks[0] as f64 / dp.peaks[0].max(1) as f64
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_signatures_match_paper() {
        let results = run(ExpScale::quick()).unwrap();
        assert_eq!(results.len(), 3);
        let dp = &results[0];
        let tp = &results[1];
        let pp = &results[2];
        // DP and TP: identical usage across the two GPUs.
        assert!((0.98..1.02).contains(&dp.asymmetry()), "DP {:?}", dp.peaks);
        assert!((0.98..1.02).contains(&tp.asymmetry()), "TP {:?}", tp.peaks);
        // TP peak about half of DP's.
        let ratio = tp.peaks[0] as f64 / dp.peaks[0] as f64;
        assert!((0.35..0.75).contains(&ratio), "TP/DP {ratio}");
        // PP: GPU1 runs the logits head — asymmetric tail.
        assert!(pp.asymmetry() > 1.05, "PP {:?}", pp.peaks);
        let rendered = render(&results);
        assert!(rendered.contains("pipeline-parallel"));
    }
}
