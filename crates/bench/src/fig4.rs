//! Figure 4 (qualitative): cross-layer call stack of the kernel with the
//! highest memory-reference count during BERT inference.

use crate::scale::ExpScale;
use dl_framework::models::{ModelZoo, RunKind};
use dl_framework::pycall::CrossLayerStack;
use pasta_core::knob::KernelAggregate;
use pasta_core::{Knob, Pasta, PastaError};
use pasta_tools::MemoryCharacteristicsTool;

/// The Fig. 4 result: the hot kernel, its aggregate and its joined stack.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The `MAX_MEM_REFERENCED_KERNEL` selection.
    pub kernel: String,
    /// Its aggregate counters.
    pub aggregate: KernelAggregate,
    /// The captured cross-layer stack.
    pub stack: CrossLayerStack,
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates session failures; fails if no stack was captured.
pub fn run(scale: ExpScale) -> Result<Fig4Result, PastaError> {
    let mut session = Pasta::builder()
        .a100()
        .tool(MemoryCharacteristicsTool::new())
        .capture_knob(Some(Knob::MaxMemReferencedKernel))
        .build()?;
    session.run_model_scaled(
        ModelZoo::Bert,
        RunKind::Inference,
        scale.inference_steps.min(2),
        scale.batch_divisor,
    )?;
    let (kernel, aggregate) = session
        .knob_selection(Knob::MaxMemReferencedKernel)
        .ok_or_else(|| pasta_core::PastaError::Config("no kernel selected".into()))?;
    let stack = session
        .cross_layer_stack(&kernel)
        .ok_or_else(|| pasta_core::PastaError::Config("no stack captured".into()))?;
    Ok(Fig4Result {
        kernel,
        aggregate,
        stack,
    })
}

/// Renders the Fig. 4 stack.
pub fn render(r: &Fig4Result) -> String {
    format!(
        "Figure 4: cross-layer call stack of MAX_MEM_REFERENCED_KERNEL\n\
         kernel: {}\n\
         memory records: {}   calls: {}   bytes: {}\n\n{}",
        r.kernel,
        r.aggregate.memory_records,
        r.aggregate.calls,
        r.aggregate.bytes,
        r.stack.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_kernel_has_joined_stack() {
        let r = run(ExpScale::quick()).unwrap();
        assert!(r.aggregate.memory_records > 0);
        let rendered = render(&r);
        assert!(rendered.contains("── C/C++ ──"));
        assert!(rendered.contains("── Python ──"));
        // BERT's memory-hottest kernel resolves into the GEMM stack of
        // Fig. 4 (gemm_and_bias) or the embedding gather.
        assert!(
            rendered.contains("gemm_and_bias") || rendered.contains("DispatchStub"),
            "{rendered}"
        );
    }
}
