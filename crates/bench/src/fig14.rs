//! Figure 14: memory usage over logical time for one GPT-2 training
//! iteration on NVIDIA (A100) vs AMD (MI300X) under identical
//! configurations.

use crate::scale::ExpScale;
use accel_sim::DeviceId;
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::{Pasta, PastaError};
use pasta_tools::{MemoryTimelineTool, TimelinePoint};
use serde::{Deserialize, Serialize};

/// One backend's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackendCurve {
    /// `NVIDIA` / `AMD`.
    pub backend: String,
    /// The memory curve (logical event index → live bytes).
    pub series: Vec<TimelinePoint>,
    /// Peak live bytes.
    pub peak: u64,
    /// Total alloc/free events (the paper: AMD issues more).
    pub events: usize,
}

/// The Fig. 14 result pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Result {
    /// NVIDIA curve.
    pub nvidia: BackendCurve,
    /// AMD curve.
    pub amd: BackendCurve,
}

fn run_backend(amd: bool, scale: ExpScale) -> Result<BackendCurve, PastaError> {
    let builder = if amd {
        Pasta::builder().mi300x()
    } else {
        Pasta::builder().a100()
    };
    let mut session = builder.tool(MemoryTimelineTool::new()).build()?;
    // Fig. 14 is defined over exactly one training iteration.
    let _ = scale.training_steps;
    session.run_model_scaled(ModelZoo::Gpt2, RunKind::Training, 1, scale.batch_divisor)?;
    let (series, peak, events) = session
        .with_tool_mut("memory-timeline", |t: &mut MemoryTimelineTool| {
            (
                t.series_for(DeviceId(0)).to_vec(),
                t.peak_for(DeviceId(0)),
                t.events_for(DeviceId(0)),
            )
        })
        .expect("tool registered");
    Ok(BackendCurve {
        backend: if amd { "AMD" } else { "NVIDIA" }.to_owned(),
        series,
        peak,
        events,
    })
}

/// Runs the Fig. 14 experiment.
///
/// # Errors
///
/// Propagates session failures.
pub fn run(scale: ExpScale) -> Result<Fig14Result, PastaError> {
    Ok(Fig14Result {
        nvidia: run_backend(false, scale)?,
        amd: run_backend(true, scale)?,
    })
}

/// Renders the Fig. 14 comparison.
pub fn render(r: &Fig14Result) -> String {
    let mut s = String::from("Figure 14: GPT-2 training memory, NVIDIA vs AMD\n");
    for c in [&r.nvidia, &r.amd] {
        s.push_str(&format!(
            "  {:<6}: peak {:>6} MB over {:>6} tensor events\n",
            c.backend,
            c.peak >> 20,
            c.events
        ));
    }
    s.push_str(&format!(
        "  NVIDIA/AMD peak ratio {:.3} (paper: NVIDIA slightly higher)\n\
         \u{0020} AMD/NVIDIA event ratio {:.3} (paper: AMD issues more)\n",
        r.nvidia.peak as f64 / r.amd.peak.max(1) as f64,
        r.amd.events as f64 / r.nvidia.events.max(1) as f64
    ));
    // Sample the curve into a 60-column sparkline per backend.
    for c in [&r.nvidia, &r.amd] {
        let n = c.series.len().max(1);
        let cols = 60.min(n);
        let mut line = String::new();
        for i in 0..cols {
            let idx = i * n / cols;
            let v = c.series[idx].allocated;
            let level = (v as f64 / c.peak.max(1) as f64 * 7.0).round() as usize;
            line.push(
                [
                    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
                    '\u{2587}', '\u{2588}',
                ][level.min(7)],
            );
        }
        s.push_str(&format!("  {:<6} {line}\n", c.backend));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_contrast_matches_paper() {
        let r = run(ExpScale::quick()).unwrap();
        // Same three-phase pattern on both (PyTorch's caching allocator).
        for c in [&r.nvidia, &r.amd] {
            assert!(c.events > 200, "{}: {}", c.backend, c.events);
            let peak_idx = c
                .series
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.allocated)
                .map(|(i, _)| i)
                .unwrap();
            assert!(peak_idx > c.series.len() / 10, "{} ramps up", c.backend);
            assert!(
                peak_idx < c.series.len() * 9 / 10,
                "{} ramps down",
                c.backend
            );
        }
        // Backend-specific differences (§V-D1).
        assert!(
            r.amd.events > r.nvidia.events,
            "AMD {} vs NVIDIA {}",
            r.amd.events,
            r.nvidia.events
        );
        assert!(
            r.nvidia.peak >= r.amd.peak,
            "NVIDIA peak {} vs AMD {}",
            r.nvidia.peak,
            r.amd.peak
        );
        let rendered = render(&r);
        assert!(rendered.contains("NVIDIA"));
        assert!(rendered.contains("AMD"));
    }
}
