//! Figure 13: memory access hotness of BERT inference over time, in
//! 2 MiB virtual blocks.

use crate::scale::ExpScale;
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::{Pasta, PastaError};
use pasta_tools::HotnessTool;
use serde::{Deserialize, Serialize};
use uvm_sim::HotnessSeries;

/// The Fig. 13 data: the series plus derived classifications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotnessResult {
    /// Dense (block × time-bin) matrix.
    pub series: HotnessSeries,
    /// Blocks hot throughout execution (pin/prefetch candidates — the
    /// blue-line bands of Fig. 13).
    pub persistent: Vec<u64>,
    /// Blocks with short bursts (eviction candidates — the red boxes).
    pub bursty: Vec<u64>,
}

/// Runs the Fig. 13 experiment (BERT inference).
///
/// # Errors
///
/// Propagates session failures.
pub fn run(scale: ExpScale) -> Result<HotnessResult, PastaError> {
    let mut session = Pasta::builder().a100().tool(HotnessTool::new(32)).build()?;
    session.run_model_scaled(
        ModelZoo::Bert,
        RunKind::Inference,
        scale.inference_steps.min(3),
        scale.batch_divisor,
    )?;
    let series = session
        .with_tool_mut("hotness", |t: &mut HotnessTool| t.series())
        .expect("tool registered");
    let persistent = series.persistent_blocks(0.75);
    let bursty: Vec<u64> = (0..series.blocks.len())
        .filter(|&row| {
            let liveness = series.block_liveness(row);
            liveness > 0.0 && liveness < 0.25
        })
        .map(|row| series.blocks[row])
        .collect();
    Ok(HotnessResult {
        series,
        persistent,
        bursty,
    })
}

/// Renders an ASCII heat-map sketch of the hotness matrix.
pub fn render(result: &HotnessResult) -> String {
    let s = &result.series;
    let mut out = format!(
        "Figure 13: BERT inference hotness — {} blocks x {} time bins\n\
         {} persistent (pin candidates), {} bursty (eviction candidates)\n\n",
        s.blocks.len(),
        s.bins(),
        result.persistent.len(),
        result.bursty.len()
    );
    // Most-accessed blocks first: the persistent parameter bands and the
    // bursty transient boxes are what Fig. 13 highlights.
    let mut rows: Vec<usize> = (0..s.blocks.len()).collect();
    rows.sort_by_key(|&r| std::cmp::Reverse(s.block_total(r)));
    for &row in rows.iter().take(40) {
        let block = s.blocks[row];
        let tag = if result.persistent.contains(&block) {
            "P"
        } else if result.bursty.contains(&block) {
            "B"
        } else {
            " "
        };
        // Row-normalized shading so both faint persistent bands and sharp
        // bursts stay visible.
        let row_max = s.grid[row].iter().copied().max().unwrap_or(1).max(1);
        let cells: String = s.grid[row]
            .iter()
            .map(|&c| {
                let level = (c as f64 / row_max as f64 * 4.0).round() as usize;
                [' ', '.', ':', '*', '#'][level.min(4)]
            })
            .collect();
        out.push_str(&format!("  {tag} block {block:>8} |{cells}|\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_shows_persistent_and_bursty_blocks() {
        let r = run(ExpScale::quick()).unwrap();
        assert!(r.series.blocks.len() > 10);
        assert!(r.series.bins() > 2);
        assert!(
            !r.persistent.is_empty(),
            "parameters stay hot through execution"
        );
        assert!(!r.bursty.is_empty(), "transient activations burst and die");
        let rendered = render(&r);
        assert!(rendered.contains("persistent"));
        assert!(rendered.contains('|'));
    }
}
