//! Experiment scaling.

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpScale {
    /// Divide Table IV batch sizes by this.
    pub batch_divisor: usize,
    /// Inference batches per model.
    pub inference_steps: usize,
    /// Training iterations per model.
    pub training_steps: usize,
}

impl ExpScale {
    /// The paper-faithful scale (full batch sizes).
    pub fn full() -> Self {
        ExpScale {
            batch_divisor: 1,
            inference_steps: 12,
            training_steps: 2,
        }
    }

    /// A smoke-test scale for CI and Criterion.
    pub fn quick() -> Self {
        ExpScale {
            batch_divisor: 8,
            inference_steps: 2,
            training_steps: 1,
        }
    }

    /// Reads `PASTA_SCALE` (`full`/`quick`), defaulting to `full`.
    pub fn from_env() -> Self {
        match std::env::var("PASTA_SCALE").as_deref() {
            Ok("quick") => ExpScale::quick(),
            _ => ExpScale::full(),
        }
    }
}

impl Default for ExpScale {
    fn default() -> Self {
        ExpScale::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(ExpScale::quick().batch_divisor > ExpScale::full().batch_divisor);
        assert_eq!(ExpScale::full().batch_divisor, 1);
    }
}
