//! Table V: memory characteristics of the six DNN models.

use crate::scale::ExpScale;
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::{Pasta, PastaError};
use pasta_tools::memchar::{MemoryCharacteristics, MemoryCharacteristicsTool};
use pasta_tools::util::format_bytes;
use serde::{Deserialize, Serialize};

/// One Table V row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableVRow {
    /// Model abbreviation.
    pub model: String,
    /// `inference` / `train`.
    pub run: String,
    /// Kernel count.
    pub kernels: u64,
    /// Memory footprint, bytes.
    pub footprint: u64,
    /// Working set (max per-kernel), bytes.
    pub working_set: u64,
    /// Minimum per-kernel working set, bytes.
    pub min_ws: u64,
    /// Mean per-kernel working set, bytes.
    pub avg_ws: u64,
    /// Median per-kernel working set, bytes.
    pub median_ws: u64,
    /// 90th-percentile per-kernel working set, bytes.
    pub p90_ws: u64,
}

impl From<(String, String, MemoryCharacteristics)> for TableVRow {
    fn from((model, run, c): (String, String, MemoryCharacteristics)) -> Self {
        TableVRow {
            model,
            run,
            kernels: c.kernel_count,
            footprint: c.footprint,
            working_set: c.working_set,
            min_ws: c.min_ws,
            avg_ws: c.avg_ws,
            median_ws: c.median_ws,
            p90_ws: c.p90_ws,
        }
    }
}

/// Runs the Table V experiment.
///
/// # Errors
///
/// Propagates session failures.
pub fn run(scale: ExpScale) -> Result<Vec<TableVRow>, PastaError> {
    let mut rows = Vec::new();
    for kind in [RunKind::Inference, RunKind::Training] {
        for model in ModelZoo::all() {
            let steps = match kind {
                RunKind::Inference => scale.inference_steps.min(2),
                RunKind::Training => 1,
            };
            let mut session = Pasta::builder()
                .a100()
                .tool(MemoryCharacteristicsTool::new())
                .build()?;
            session.run_model_scaled(model, kind, steps, scale.batch_divisor)?;
            let c = session
                .with_tool_mut(
                    "memory-characteristics",
                    |t: &mut MemoryCharacteristicsTool| t.characteristics(),
                )
                .expect("tool registered");
            rows.push(TableVRow::from((
                model.spec().abbr.to_owned(),
                kind.label().to_owned(),
                c,
            )));
        }
    }
    Ok(rows)
}

/// Renders Table V in the paper's column layout.
pub fn render(rows: &[TableVRow]) -> String {
    let mut s = String::from(
        "Table V: memory characteristics (sizes adaptive units)\n\
         model     run        kernels  footprint    WS(max)     min WS      avg WS     med WS      p90 WS\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<9} {:<9} {:>8}  {:>10}  {:>10} {:>10} {:>10} {:>10}  {:>10}\n",
            r.model,
            r.run,
            r.kernels,
            format_bytes(r.footprint),
            format_bytes(r.working_set),
            format_bytes(r.min_ws),
            format_bytes(r.avg_ws),
            format_bytes(r.median_ws),
            format_bytes(r.p90_ws),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_has_paper_shape() {
        let rows = run(ExpScale::quick()).unwrap();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.kernels > 0, "{} {}", r.model, r.run);
            assert!(
                r.footprint > r.working_set,
                "{} {}: footprint {} vs WS {} — working sets are much \
                 smaller than footprints (the paper's headline finding)",
                r.model,
                r.run,
                r.footprint,
                r.working_set
            );
            assert!(r.min_ws <= r.median_ws);
            assert!(r.median_ws <= r.p90_ws);
            assert!(r.p90_ws <= r.working_set);
        }
        // Training footprints exceed inference footprints (grads+moments).
        for model in ["AN", "RN-18", "GPT-2"] {
            let inf = rows
                .iter()
                .find(|r| r.model == model && r.run == "inference")
                .unwrap();
            let tr = rows
                .iter()
                .find(|r| r.model == model && r.run == "train")
                .unwrap();
            assert!(
                tr.footprint > inf.footprint,
                "{model}: train {} vs inference {}",
                tr.footprint,
                inf.footprint
            );
        }
    }
}
