//! Figures 9 and 10: analysis-model overhead and its breakdown.
//!
//! Three variants of the memory-characteristics tool (paper §V-B3):
//!
//! * **CS-GPU** — Compute Sanitizer collection with PASTA's GPU-resident
//!   fused collect-and-analyze;
//! * **CS-CPU** — Compute Sanitizer collection, conventional single-thread
//!   CPU analysis (the MemoryTracker sample tool's model);
//! * **NVBIT-CPU** — NVBit collection (SASS dump+parse, heavier records),
//!   CPU analysis (the MemTrace tool's model);
//!
//! run on simulated A100 and RTX 3060, reported as overhead relative to
//! the uninstrumented execution time (Fig. 9) and as the
//! execution/collection/transfer/analysis breakdown (Fig. 10). Runs whose
//! simulated profiling time exceeds 7 days report `∞`, as in the paper.

use crate::scale::ExpScale;
use accel_sim::{DeviceSpec, OverheadBreakdown};
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::{BackendChoice, Pasta, PastaError};
use pasta_tools::MemoryCharacteristicsTool;
use serde::{Deserialize, Serialize};
use vendor_nv::nvbit::NvbitConfig;
use vendor_nv::sanitizer::SanitizerConfig;

/// Seven simulated days — the paper's did-not-finish cutoff.
pub const CUTOFF_NS: u64 = 7 * 24 * 3600 * 1_000_000_000;

/// The three analysis variants of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// GPU-resident Compute Sanitizer (PASTA's design).
    CsGpu,
    /// CPU-analysis Compute Sanitizer (conventional).
    CsCpu,
    /// CPU-analysis NVBit (conventional).
    NvbitCpu,
}

impl Variant {
    /// All variants in paper order.
    pub fn all() -> [Variant; 3] {
        [Variant::CsGpu, Variant::CsCpu, Variant::NvbitCpu]
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::CsGpu => "CS-GPU",
            Variant::CsCpu => "CS-CPU",
            Variant::NvbitCpu => "NVBIT-CPU",
        }
    }

    fn backend(self) -> BackendChoice {
        match self {
            Variant::CsGpu => BackendChoice::Sanitizer(SanitizerConfig::gpu_resident()),
            Variant::CsCpu => BackendChoice::Sanitizer(SanitizerConfig::cpu_post_process()),
            Variant::NvbitCpu => BackendChoice::Nvbit(NvbitConfig::default()),
        }
    }
}

/// One measurement: model × device × variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadResult {
    /// Model abbreviation.
    pub model: String,
    /// Device name.
    pub device: &'static str,
    /// Variant label.
    pub variant: &'static str,
    /// Uninstrumented execution time, ns.
    pub execution_ns: u64,
    /// Instrumented (profiled) total time, ns.
    pub profiled_ns: u64,
    /// Overhead factor (`profiled / execution`); `None` = exceeded the
    /// 7-day cutoff (the paper's ∞).
    pub overhead: Option<f64>,
    /// Fig. 10 breakdown.
    pub breakdown: OverheadBreakdown,
}

impl OverheadResult {
    /// Fig. 10 fractions `(execution, collection, transfer, analysis)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        self.breakdown.fractions(self.execution_ns)
    }
}

fn device_pair() -> [(&'static str, DeviceSpec); 2] {
    [
        ("A100", DeviceSpec::a100_80gb()),
        ("3060", DeviceSpec::rtx_3060()),
    ]
}

/// Measures one model on one device under one variant.
///
/// # Errors
///
/// Propagates session failures.
pub fn measure(
    model: ModelZoo,
    device: &'static str,
    spec: DeviceSpec,
    variant: Variant,
    scale: ExpScale,
) -> Result<OverheadResult, PastaError> {
    // Uninstrumented reference run.
    let mut baseline = Pasta::builder()
        .devices(vec![spec.clone()])
        .backend(BackendChoice::HostOnly)
        .build()?;
    let base_report = baseline.run_model_scaled(
        model,
        RunKind::Inference,
        scale.inference_steps,
        scale.batch_divisor,
    )?;
    let execution_ns = base_report.profiled_time.as_nanos();

    // Instrumented run.
    let mut session = Pasta::builder()
        .devices(vec![spec])
        .tool(MemoryCharacteristicsTool::new())
        .backend(variant.backend())
        .build()?;
    let report = session.run_model_scaled(
        model,
        RunKind::Inference,
        scale.inference_steps,
        scale.batch_divisor,
    )?;
    let profiled_ns = report.profiled_time.as_nanos();
    let overhead = if profiled_ns > CUTOFF_NS {
        None
    } else {
        Some(profiled_ns as f64 / execution_ns.max(1) as f64)
    };
    Ok(OverheadResult {
        model: model.spec().abbr.to_owned(),
        device,
        variant: variant.label(),
        execution_ns,
        profiled_ns,
        overhead,
        breakdown: report.overhead,
    })
}

/// Runs the full Fig. 9/10 grid.
///
/// # Errors
///
/// Propagates session failures.
pub fn run(scale: ExpScale) -> Result<Vec<OverheadResult>, PastaError> {
    let mut out = Vec::new();
    for model in ModelZoo::all() {
        for (device, spec) in device_pair() {
            for variant in Variant::all() {
                out.push(measure(model, device, spec.clone(), variant, scale)?);
            }
        }
    }
    Ok(out)
}

/// Geometric mean of the overhead factors for `(device, variant)` pairs
/// (skipping ∞ entries), as the paper's "Geo." column.
pub fn geomean(results: &[OverheadResult], device: &str, variant: &str) -> Option<f64> {
    let factors: Vec<f64> = results
        .iter()
        .filter(|r| r.device == device && r.variant == variant)
        .filter_map(|r| r.overhead)
        .collect();
    if factors.is_empty() {
        return None;
    }
    Some((factors.iter().map(|f| f.ln()).sum::<f64>() / factors.len() as f64).exp())
}

/// Renders the Fig. 9 rows.
pub fn render_fig9(results: &[OverheadResult]) -> String {
    let mut s = String::from(
        "Figure 9: overhead vs model execution time (x; ∞ = > 7 simulated days)\n\
         model     device  CS-GPU        CS-CPU        NVBIT-CPU\n",
    );
    let fmt = |o: Option<f64>| match o {
        Some(f) => format!("{f:>10.1}x"),
        None => "         ∞".to_owned(),
    };
    let mut models: Vec<&str> = results.iter().map(|r| r.model.as_str()).collect();
    models.dedup();
    for model in models {
        for device in ["A100", "3060"] {
            let get = |v: &str| {
                results
                    .iter()
                    .find(|r| r.model == model && r.device == device && r.variant == v)
                    .and_then(|r| r.overhead)
            };
            s.push_str(&format!(
                "{model:<9} {device:<7} {} {} {}\n",
                fmt(get("CS-GPU")),
                fmt(get("CS-CPU")),
                fmt(get("NVBIT-CPU")),
            ));
        }
    }
    for device in ["A100", "3060"] {
        let g = |v| geomean(results, device, v).unwrap_or(f64::NAN);
        let (gpu, cpu, nvbit) = (g("CS-GPU"), g("CS-CPU"), g("NVBIT-CPU"));
        s.push_str(&format!(
            "Geo. {device:<7}: CS-GPU {gpu:.1}x  CS-CPU {cpu:.1}x  NVBIT-CPU {nvbit:.1}x  \
             → CS-CPU/CS-GPU {:.0}x, NVBIT-CPU/CS-GPU {:.0}x\n",
            cpu / gpu,
            nvbit / gpu
        ));
    }
    s
}

/// Renders the Fig. 10 breakdown rows.
pub fn render_fig10(results: &[OverheadResult]) -> String {
    let mut s = String::from(
        "Figure 10: profiling-time breakdown (fractions of total)\n\
         model     device  variant     execution  collection  transfer  analysis\n",
    );
    for r in results {
        let (e, c, t, a) = r.fractions();
        s.push_str(&format!(
            "{:<9} {:<7} {:<11} {e:>9.3}  {c:>10.3}  {t:>8.3}  {a:>8.3}\n",
            r.model, r.device, r.variant
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_ordering_matches_paper() {
        // One model, quick scale: the overhead ordering and breakdown
        // shapes of Figs. 9–10 hold.
        let scale = ExpScale::quick();
        let spec = DeviceSpec::a100_80gb();
        let gpu = measure(ModelZoo::Bert, "A100", spec.clone(), Variant::CsGpu, scale).unwrap();
        let cpu = measure(ModelZoo::Bert, "A100", spec.clone(), Variant::CsCpu, scale).unwrap();
        let nvbit = measure(ModelZoo::Bert, "A100", spec, Variant::NvbitCpu, scale).unwrap();

        let g = gpu.overhead.expect("CS-GPU finishes");
        assert!(g > 1.0, "instrumentation costs something: {g}");
        let c = cpu.overhead.expect("CS-CPU finishes at quick scale");
        assert!(
            c / g > 100.0,
            "CS-CPU/CS-GPU gap should be orders of magnitude: {c} / {g}"
        );
        if let Some(n) = nvbit.overhead {
            assert!(n > c * 5.0, "NVBit costs well above CS-CPU: {n} vs {c}");
        }

        // Fig. 10 shapes: CPU variants dominated by analysis; the GPU
        // variant is not.
        let (_, _, _, a_cpu) = cpu.fractions();
        assert!(a_cpu > 0.5, "CPU-analysis fraction {a_cpu}");
        let (_, _, _, a_gpu) = gpu.fractions();
        assert!(a_gpu < 0.1, "GPU-resident has no CPU analysis: {a_gpu}");
    }
}
