//! Multi-device emission throughput (ISSUE 3).
//!
//! A fully-subscribed fine-grained stream (1029 sink callbacks per
//! launch) is analyzed by a representative six-tool suite — kernel
//! frequency, barrier stall, hotness, op→kernel map, memory
//! characteristics, UVM prefetch advisor — so the drain work under the
//! hub lock dominates the per-event construction cost, exactly the
//! regime where one global mutex caps multi-device scaling.
//!
//! Two measurement families:
//!
//! * `multi-device/*` — wall-clock of 2 (and 4) OS threads, one per
//!   device, driving their streams concurrently into a **sharded** hub
//!   (one [`DeviceShard`] per device, disjoint locks) versus the
//!   pre-ISSUE-3 **single-mutex** topology (every device through one
//!   shard). On a multi-core host the sharded numbers pull ahead by the
//!   drain fraction; on a single-CPU container the threads timeslice and
//!   the two tie — which is why the bench also measures the
//!   machine-independent decomposition below.
//! * `per-device/*` — the serialization decomposition: `full-launch`
//!   measures one device's complete per-launch cost `A` (emit + drain),
//!   `drain-under-lock` measures the portion `B` that must hold the
//!   launch's shard lock. With two devices, a single shared mutex bounds
//!   wall time per launch-pair from below by `2B`, while per-device
//!   shards run the pair in `A`; the 2-device throughput ratio is
//!   therefore `max(A, 2B) / A`, from single-threaded, deterministic
//!   measurements. The acceptance gate (≥ 1.5x) reads this ratio.
//!
//! ISSUE 8 adds the spine dimension:
//!
//! * `contended/*` — 2 devices × {2,4} emitter threads per device, ring
//!   spine (with background [`SpineDrainer`]s, as `run_parallel`
//!   schedules them) vs. the mutex spine where every flush drains inline
//!   under the shard lock. Wall-clock; ties on a 1-CPU container.
//! * `per-device/full-launch-ring` — `A_ring`: the complete per-launch
//!   cost through the ring spine with no consumer, so the producer-side
//!   backpressure fallback performs every drain itself. `A_ring − B` is
//!   the emitter's critical-path cost `E` once a consumer takes the
//!   drain: the decomposition the contended acceptance ratio reads.
//! * `spine/ring-hop` vs `spine/mutex-hop` — the raw per-message cost of
//!   the SPSC handoff against a lock round-trip on the same payload.
//!
//! Numbers land in `BENCH_multi_device.json`; run with
//! `cargo bench -p pasta-bench --bench multi_device`.
//!
//! [`DeviceShard`]: pasta_core::hub::DeviceShard

use accel_sim::instrument::{DeviceTraceSink, TraceCtx};
use accel_sim::{
    AccessBatch, AccessKind, AccessPattern, DeviceId, Dim3, KernelTraceSummary, LaunchId, MemSpace,
};
use criterion::{criterion_group, criterion_main, Criterion};
use pasta_core::hub::{new_shared, Hub, HubSink, SharedHub};
use pasta_core::processor::EventProcessor;
use pasta_core::spine::{EventRing, SpineConfig, SpineDrainer, SpineMode, SpineMsg};
use pasta_core::{Event, EventClass};
use pasta_tools::{
    BarrierStallTool, HotnessTool, KernelFrequencyTool, MemoryCharacteristicsTool, OpKernelMapTool,
    UvmPrefetchAdvisor,
};
use std::sync::Arc;

/// Access batches per simulated launch.
const BATCHES: u64 = 1024;

/// Launches each device thread drives per threaded benchmark iteration
/// (amortizes thread spawn over ~8 × 1029 callbacks of real work).
const LAUNCHES_PER_ITER: u64 = 8;

/// Sink callbacks one launch issues: begin + batches + barriers + blocks +
/// instructions + end.
pub const CALLBACKS_PER_LAUNCH: u64 = BATCHES + 5;

fn ctx(device: u32, launch: u64) -> TraceCtx {
    TraceCtx {
        launch: LaunchId(launch),
        device: DeviceId(device),
        stream: 0,
        name: "ampere_sgemm_128x64_tn".into(),
        grid: Dim3::linear(64),
        block: Dim3::linear(128),
    }
}

fn batch(launch: u64, i: u64) -> AccessBatch {
    AccessBatch {
        launch: LaunchId(launch),
        spec_index: 0,
        base: 0x1000 + (i % 512) * 4096,
        len: 4096,
        records: 32,
        bytes: 4096,
        elem_size: 4,
        kind: AccessKind::Load,
        space: MemSpace::Global,
        pattern: AccessPattern::Sequential,
    }
}

/// The representative six-tool analysis suite (all forkable, so the
/// session shards it per device).
fn processor() -> EventProcessor {
    let mut p = EventProcessor::new();
    p.tools.register(Box::new(KernelFrequencyTool::new()));
    p.tools.register(Box::new(BarrierStallTool::new()));
    p.tools.register(Box::new(HotnessTool::new(64)));
    p.tools.register(Box::new(OpKernelMapTool::new()));
    p.tools.register(Box::new(MemoryCharacteristicsTool::new()));
    p.tools.register(Box::new(UvmPrefetchAdvisor::new()));
    p
}

fn sharded_hub(devices: u32) -> SharedHub {
    let shards = (0..devices)
        .map(|d| {
            let p = processor();
            let p = if d == 0 {
                p
            } else {
                p.fork().expect("suite forks")
            };
            (DeviceId(d), p)
        })
        .collect();
    Arc::new(Hub::sharded(shards).unwrap())
}

/// One launch worth of fully-subscribed fine-grained traffic.
fn drive_launch(sink: &mut HubSink, device: u32, launch: u64) {
    let ctx = ctx(device, launch);
    sink.on_kernel_begin(&ctx);
    for i in 0..BATCHES {
        sink.on_batch(&ctx, &batch(launch, i));
    }
    sink.on_barriers(&ctx, 512);
    sink.on_blocks(&ctx, 64);
    sink.on_instructions(&ctx, 1 << 20);
    sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
}

/// One threaded iteration: every device thread drives its launches
/// through its own sink into `hub`, concurrently.
fn drive_concurrent(hub: &SharedHub, devices: u32, iter: u64) {
    std::thread::scope(|scope| {
        for d in 0..devices {
            let hub = Arc::clone(hub);
            scope.spawn(move || {
                let mut sink = HubSink::new(hub);
                for l in 0..LAUNCHES_PER_ITER {
                    // Per-lane engines number launches independently from
                    // zero, so ids collide across devices — replicate that.
                    let launch = iter * LAUNCHES_PER_ITER + l;
                    drive_launch(&mut sink, d, launch);
                }
            });
        }
    });
}

fn bench_topology(c: &mut Criterion, label: &str, hub: SharedHub, devices: u32) {
    let mut g = c.benchmark_group("multi-device");
    g.sample_size(60);
    let mut iter = 0u64;
    g.bench_function(label, |b| {
        b.iter(|| {
            drive_concurrent(&hub, devices, iter);
            iter += 1;
        })
    });
    g.finish();
}

fn two_device_sharded(c: &mut Criterion) {
    bench_topology(c, "2dev-sharded", sharded_hub(2), 2);
}

fn two_device_single_mutex(c: &mut Criterion) {
    bench_topology(c, "2dev-single-mutex", new_shared(processor()), 2);
}

fn four_device_sharded(c: &mut Criterion) {
    bench_topology(c, "4dev-sharded", sharded_hub(4), 4);
}

fn four_device_single_mutex(c: &mut Criterion) {
    bench_topology(c, "4dev-single-mutex", new_shared(processor()), 4);
}

/// `A`: one device's complete per-launch cost through the real sink on
/// the mutex spine (event construction + buffering outside the lock,
/// batched drain under it).
fn per_device_full_launch(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-device");
    g.sample_size(200);
    let hub = sharded_hub(1);
    let mut sink = HubSink::inline_spine(Arc::clone(&hub));
    let mut launch = 0u64;
    g.bench_function("full-launch", |b| {
        b.iter(|| {
            drive_launch(&mut sink, 0, launch);
            launch += 1;
        })
    });
    g.finish();
}

/// `A_ring`: the same launch through the ring spine with nobody
/// draining, so the producer-side backpressure fallback performs every
/// drain itself. Total work matches `A`; the difference is pure spine
/// overhead, and `A_ring − B` is the emitter's critical path `E` once a
/// consumer owns the drain.
fn per_device_full_launch_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-device");
    g.sample_size(200);
    let hub = sharded_hub(1);
    let mut sink = HubSink::with_spine(Arc::clone(&hub), SpineMode::Ring, SpineConfig::default());
    let mut launch = 0u64;
    g.bench_function("full-launch-ring", |b| {
        b.iter(|| {
            drive_launch(&mut sink, 0, launch);
            launch += 1;
        })
    });
    g.finish();
}

/// The raw SPSC handoff: push one realistic control message and pop it
/// back, same thread. Prices the spine hop with no processing attached.
fn spine_ring_hop(c: &mut Criterion) {
    let mut g = c.benchmark_group("spine");
    g.sample_size(200);
    let ring = EventRing::with_config(&SpineConfig::default());
    g.bench_function("ring-hop", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                let msg = SpineMsg::One(Event::Barrier {
                    launch: LaunchId(0),
                    count: i,
                    cluster: false,
                });
                assert!(ring.push(msg).is_ok());
                assert!(ring.pop().is_some());
            }
        })
    });
    g.finish();
}

/// The same payload through a `parking_lot` mutex round-trip — what the
/// inline spine pays per flush before any processing happens.
fn spine_mutex_hop(c: &mut Criterion) {
    let mut g = c.benchmark_group("spine");
    g.sample_size(200);
    let slot = parking_lot::Mutex::new(Vec::with_capacity(1));
    g.bench_function("mutex-hop", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                let msg = SpineMsg::One(Event::Barrier {
                    launch: LaunchId(0),
                    count: i,
                    cluster: false,
                });
                slot.lock().push(msg);
                assert!(slot.lock().pop().is_some());
            }
        })
    });
    g.finish();
}

/// 2 devices × `emitters` threads per device: more sinks than shards, the
/// regime the ring spine targets. Ring configs run the same background
/// drainers `run_parallel` schedules; the final quiesce (inside the
/// timed region, for losslessness) drains whatever the drainers missed.
fn bench_contended(c: &mut Criterion, emitters: u32, mode: SpineMode) {
    let mut g = c.benchmark_group("contended");
    g.sample_size(20);
    let devices = 2u32;
    let hub = sharded_hub(devices);
    let device_ids: Vec<DeviceId> = (0..devices).map(DeviceId).collect();
    let label = format!(
        "2dev-{emitters}emit-{}",
        if mode == SpineMode::Ring {
            "ring"
        } else {
            "mutex"
        }
    );
    let mut iter = 0u64;
    g.bench_function(&label, |b| {
        b.iter(|| {
            let drainer = (mode == SpineMode::Ring)
                .then(|| SpineDrainer::start(Arc::clone(&hub), &device_ids));
            std::thread::scope(|scope| {
                for d in 0..devices {
                    for e in 0..emitters {
                        let hub = Arc::clone(&hub);
                        let launch = (iter * u64::from(devices * emitters)
                            + u64::from(d * emitters + e))
                            * LAUNCHES_PER_ITER;
                        scope.spawn(move || {
                            let mut sink = HubSink::with_spine(hub, mode, SpineConfig::default());
                            for l in 0..LAUNCHES_PER_ITER {
                                drive_launch(&mut sink, d, launch + l);
                            }
                        });
                    }
                }
            });
            if let Some(drainer) = drainer {
                drainer.stop();
            }
            hub.quiesce();
            iter += 1;
        })
    });
    g.finish();
}

fn contended_two_emitters_ring(c: &mut Criterion) {
    bench_contended(c, 2, SpineMode::Ring);
}

fn contended_two_emitters_mutex(c: &mut Criterion) {
    bench_contended(c, 2, SpineMode::Inline);
}

fn contended_four_emitters_ring(c: &mut Criterion) {
    bench_contended(c, 4, SpineMode::Ring);
}

fn contended_four_emitters_mutex(c: &mut Criterion) {
    bench_contended(c, 4, SpineMode::Inline);
}

/// `B`: the under-lock portion of the same launch — exactly the calls
/// [`HubSink`] makes while holding its shard's lock, on pre-built events
/// (the emit side is excluded). With a single shared mutex, two devices'
/// `B`s serialize; with per-device shards they do not.
fn per_device_drain_under_lock(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-device");
    g.sample_size(200);
    let hub = sharded_hub(1);
    let tctx = ctx(0, 0);
    let access_events: Vec<Event> = (0..BATCHES)
        .map(|i| Event::GlobalAccess {
            launch: LaunchId(0),
            kernel: tctx.name.clone(),
            batch: batch(0, i),
        })
        .collect();
    let control_events = vec![
        Event::Barrier {
            launch: LaunchId(0),
            count: 512,
            cluster: false,
        },
        Event::BlockBoundary {
            launch: LaunchId(0),
            count: 64,
        },
        Event::Instructions {
            launch: LaunchId(0),
            count: 1 << 20,
        },
    ];
    let mut launch = 0u64;
    g.bench_function("drain-under-lock", |b| {
        b.iter(|| {
            let mut p = hub.lock_device(DeviceId(0));
            p.process(&Event::KernelLaunchBegin {
                launch: LaunchId(launch),
                device: DeviceId(0),
                stream: 0,
                name: tctx.name.clone(),
                grid: tctx.grid,
                block: tctx.block,
            });
            // The sink flushes every 256 buffered events: same chunking.
            for chunk in access_events.chunks(256) {
                p.process_class_batch(EventClass::DeviceAccess, chunk);
            }
            p.process_class_batch(EventClass::DeviceControl, &control_events);
            p.process(&Event::KernelTrace {
                launch: LaunchId(launch),
                kernel: tctx.name.clone(),
                summary: KernelTraceSummary::default(),
            });
            launch += 1;
        })
    });
    g.finish();
}

criterion_group!(
    multi_device,
    two_device_sharded,
    two_device_single_mutex,
    four_device_sharded,
    four_device_single_mutex,
    per_device_full_launch,
    per_device_full_launch_ring,
    per_device_drain_under_lock,
    spine_ring_hop,
    spine_mutex_hop,
    contended_two_emitters_ring,
    contended_two_emitters_mutex,
    contended_four_emitters_ring,
    contended_four_emitters_mutex
);
criterion_main!(multi_device);
