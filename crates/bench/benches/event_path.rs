//! Event hot-path throughput (ISSUE 2).
//!
//! Measures sink-callback throughput through [`HubSink`] for the three
//! configurations the tentpole optimizes:
//!
//! * `fine/no-tools` — fine-grained stream, empty tool collection: the
//!   interest gate should reject every device callback before locking.
//! * `fine/coarse-tool` — fine-grained stream, one coarse-interest tool:
//!   same gate, but the kernel lifecycle events still dispatch.
//! * `fine/device-tool` — fine-grained stream, one all-interest tool: the
//!   full intern + buffer + batched-flush path.
//! * `coarse/launch-events` — host-path kernel-launch events through the
//!   shared hub, the baseline coarse path.
//!
//! ISSUE 8 adds the spine dimension: `fine/device-tool` now rides the
//! default SPSC ring spine, `fine/device-tool-inline` pins the mutex
//! reference, and the `contended/*` family offers the same
//! fully-subscribed stream from 2–4 emitter threads into the single
//! shard, ring vs. mutex, to price emission under contention.
//!
//! Numbers land in `BENCH_event_path.json`; run with
//! `cargo bench -p pasta-bench --bench event_path`.

use accel_sim::instrument::{DeviceTraceSink, TraceCtx};
use accel_sim::{
    AccessBatch, AccessKind, AccessPattern, DeviceId, Dim3, KernelTraceSummary, LaunchId, MemSpace,
    SimTime,
};
use criterion::{criterion_group, criterion_main, Criterion};
use pasta_core::hub::{new_shared, HubSink};
use pasta_core::processor::EventProcessor;
use pasta_core::spine::{SpineConfig, SpineMode};
use pasta_core::tool::{Interest, LaunchCounter, Tool};
use pasta_core::Event;

/// Access batches per simulated launch (one iteration).
const BATCHES: u64 = 1024;

/// Total sink callbacks one iteration issues: begin + batches + barriers +
/// blocks + instructions + end.
pub const CALLBACKS_PER_ITER: u64 = BATCHES + 5;

fn ctx(launch: u64) -> TraceCtx {
    TraceCtx {
        launch: LaunchId(launch),
        device: DeviceId(0),
        stream: 0,
        name: "ampere_sgemm_128x64_tn".into(),
        grid: Dim3::linear(64),
        block: Dim3::linear(128),
    }
}

fn batch(launch: u64, i: u64) -> AccessBatch {
    AccessBatch {
        launch: LaunchId(launch),
        spec_index: 0,
        base: 0x1000 + i * 4096,
        len: 4096,
        records: 32,
        bytes: 4096,
        elem_size: 4,
        kind: AccessKind::Load,
        space: if i.is_multiple_of(4) {
            MemSpace::Shared
        } else {
            MemSpace::Global
        },
        pattern: AccessPattern::Sequential,
    }
}

/// One simulated launch worth of fine-grained traffic.
fn drive_launch(sink: &mut HubSink, launch: u64) {
    let ctx = ctx(launch);
    sink.on_kernel_begin(&ctx);
    for i in 0..BATCHES {
        sink.on_batch(&ctx, &batch(launch, i));
    }
    sink.on_barriers(&ctx, 512);
    sink.on_blocks(&ctx, 64);
    sink.on_instructions(&ctx, 1 << 20);
    sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
}

/// An all-interest tool that counts every delivered event.
#[derive(Default)]
struct DeviceCounter {
    events: u64,
}

impl Tool for DeviceCounter {
    fn name(&self) -> &str {
        "device-counter"
    }
    fn interest(&self) -> Interest {
        Interest::all()
    }
    fn on_event(&mut self, _event: &Event) {
        self.events += 1;
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_fine(c: &mut Criterion, label: &str, make: impl Fn() -> EventProcessor) {
    let mut g = c.benchmark_group("fine");
    g.sample_size(200);
    let hub = new_shared(make());
    let mut sink = HubSink::new(std::sync::Arc::clone(&hub));
    let mut launch = 0u64;
    g.bench_function(label, |b| {
        b.iter(|| {
            drive_launch(&mut sink, launch);
            launch += 1;
        })
    });
    g.finish();
}

fn fine_no_tools(c: &mut Criterion) {
    bench_fine(c, "no-tools", EventProcessor::new);
}

fn fine_coarse_tool(c: &mut Criterion) {
    bench_fine(c, "coarse-tool", || {
        let mut p = EventProcessor::new();
        p.tools.register(Box::<LaunchCounter>::default());
        p
    });
}

fn device_tool_processor() -> EventProcessor {
    let mut p = EventProcessor::new();
    p.tools.register(Box::<DeviceCounter>::default());
    p
}

fn fine_device_tool(c: &mut Criterion) {
    bench_fine(c, "device-tool", device_tool_processor);
}

/// The mutex-spine reference for the same fully-subscribed stream:
/// every 256-event flush drains inline under the shard lock.
fn fine_device_tool_inline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fine");
    g.sample_size(200);
    let hub = new_shared(device_tool_processor());
    let mut sink = HubSink::inline_spine(std::sync::Arc::clone(&hub));
    let mut launch = 0u64;
    g.bench_function("device-tool-inline", |b| {
        b.iter(|| {
            drive_launch(&mut sink, launch);
            launch += 1;
        })
    });
    g.finish();
}

/// `emitters` threads, each with its own sink, offering the
/// fully-subscribed stream to the one shard concurrently. On the mutex
/// spine every flush convoys on the shard lock; on the ring spine each
/// sink pushes to its own SPSC ring and only the backpressure fallback
/// touches the lock.
fn bench_contended(c: &mut Criterion, emitters: u32, mode: SpineMode) {
    let mut g = c.benchmark_group("contended");
    g.sample_size(30);
    let hub = new_shared(device_tool_processor());
    let label = format!(
        "{emitters}emit-{}",
        if mode == SpineMode::Ring {
            "ring"
        } else {
            "mutex"
        }
    );
    let mut iter = 0u64;
    g.bench_function(&label, |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for e in 0..emitters {
                    let hub = std::sync::Arc::clone(&hub);
                    let launch = iter * u64::from(emitters) + u64::from(e);
                    scope.spawn(move || {
                        let mut sink = HubSink::with_spine(hub, mode, SpineConfig::default());
                        drive_launch(&mut sink, launch);
                    });
                }
            });
            hub.quiesce();
            iter += 1;
        })
    });
    g.finish();
}

fn contended_two_emitters_ring(c: &mut Criterion) {
    bench_contended(c, 2, SpineMode::Ring);
}

fn contended_two_emitters_mutex(c: &mut Criterion) {
    bench_contended(c, 2, SpineMode::Inline);
}

fn contended_four_emitters_ring(c: &mut Criterion) {
    bench_contended(c, 4, SpineMode::Ring);
}

fn contended_four_emitters_mutex(c: &mut Criterion) {
    bench_contended(c, 4, SpineMode::Inline);
}

fn coarse_launch_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("coarse");
    g.sample_size(200);
    let mut p = EventProcessor::new();
    p.tools.register(Box::<LaunchCounter>::default());
    let hub = new_shared(p);
    let mut launch = 0u64;
    let name: accel_sim::Symbol = "ampere_sgemm_128x64_tn".into();
    g.bench_function("launch-events", |b| {
        b.iter(|| {
            for _ in 0..64 {
                hub.process(&Event::KernelLaunchEnd {
                    launch: LaunchId(launch),
                    device: DeviceId(0),
                    name: name.clone(),
                    start: SimTime(0),
                    end: SimTime(1000),
                });
                launch += 1;
            }
        })
    });
    g.finish();
}

criterion_group!(
    event_path,
    fine_no_tools,
    fine_coarse_tool,
    fine_device_tool,
    fine_device_tool_inline,
    coarse_launch_events,
    contended_two_emitters_ring,
    contended_two_emitters_mutex,
    contended_four_emitters_ring,
    contended_four_emitters_mutex
);
criterion_main!(event_path);
