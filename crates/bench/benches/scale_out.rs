//! Scale-out executor benchmarks (ISSUE 9).
//!
//! Two costs gate a 256-device session: the session-end **merge** of
//! per-shard analysis state, and the **lane executor** that drives the
//! shards in the first place.
//!
//! * `merge/*` — the session-end fold of N populated hotness trackers,
//!   linear (the pre-ISSUE-9 chain, critical path `(N-1)·M` for a pair
//!   merge costing `M`) versus the pairwise tree reduction
//!   (`tree_reduce`, critical path `⌈N/W⌉·M + ⌈log₂N⌉·M` on `W`
//!   workers). On a multi-core host the tree pulls ahead once `N` is
//!   large; on a single-CPU container the rounds timeslice and the tree
//!   pays thread spawns on top — which is why the bench also measures
//!   `merge/pair` (`M` itself), from which the machine-independent
//!   critical-path ratio is computed (see `BENCH_scale_out.json`).
//! * `pool/*` — driving N independent lane tasks of fixed CPU work
//!   through the bounded pool (`run_pool`, W workers) versus the
//!   pre-ISSUE-9 thread-per-lane scope (N spawns). The pool's win is
//!   visible even single-core: N−W fewer thread spawn/join round trips
//!   per region. `pool/spawn-join` prices one such round trip.
//!
//! Numbers land in `BENCH_scale_out.json`; run with
//! `cargo bench -p pasta-bench --bench scale_out`.

use accel_sim::{AccelError, DeviceId};
use criterion::{criterion_group, criterion_main, Criterion};
use dl_framework::lane_exec::{self, PoolTask};
use pasta_core::merge::{linear_reduce, tree_reduce};
use uvm_sim::BlockHotness;

/// Access records per shard tracker — enough distinct (block, bin)
/// cells that a pair merge costs real map-union work, sized like a
/// fine-grained lane's worth of hotness state.
const RECORDS_PER_SHARD: u64 = 512;

/// Builds one populated per-shard hotness tracker. Shards overlap on
/// half their blocks (shared parameters) and own the other half
/// (activations), so merges exercise both the hit and miss paths of the
/// count-map union.
fn shard_tracker(shard: u64) -> BlockHotness {
    let mut t = BlockHotness::new(8);
    for i in 0..RECORDS_PER_SHARD {
        let block = if i % 2 == 0 {
            i
        } else {
            shard * RECORDS_PER_SHARD + i
        };
        t.record(block * (2 << 20), 1 << 16, 32);
    }
    t
}

fn shard_trackers(n: u64) -> Vec<BlockHotness> {
    (0..n).map(shard_tracker).collect()
}

/// `M`: one pair merge — the unit cost both critical-path formulas are
/// denominated in.
fn merge_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(200);
    let a = shard_tracker(0);
    let b = shard_tracker(1);
    g.bench_function("pair", |bch| {
        bch.iter(|| {
            let mut acc = a.clone();
            acc.merge_from(&b);
            criterion::black_box(acc.events_seen())
        })
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion, shards: u64) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(30);
    let items = shard_trackers(shards);

    g.bench_function(format!("linear-{shards}"), |b| {
        b.iter(|| {
            let merged = linear_reduce(items.clone(), |acc: &mut BlockHotness, next| {
                acc.merge_from(&next);
            })
            .expect("non-empty");
            criterion::black_box(merged.events_seen())
        })
    });

    for workers in [4usize, 8] {
        g.bench_function(format!("tree-{shards}-w{workers}"), |b| {
            b.iter(|| {
                let merged = tree_reduce(items.clone(), workers, |acc: &mut BlockHotness, next| {
                    acc.merge_from(&next);
                })
                .expect("non-empty");
                criterion::black_box(merged.events_seen())
            })
        });
    }
    g.finish();
}

fn merge_8(c: &mut Criterion) {
    bench_merge(c, 8);
}

fn merge_64(c: &mut Criterion) {
    bench_merge(c, 64);
}

fn merge_256(c: &mut Criterion) {
    bench_merge(c, 256);
}

/// Fixed per-lane CPU work standing in for a lane's emission stream —
/// deterministic, allocation-free, long enough (~10k mults) that the
/// scheduler granularity does not swamp it.
fn lane_work(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..10_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn pool_tasks<'a>(lanes: u32) -> Vec<PoolTask<'a, u64>> {
    (0..lanes)
        .map(|d| PoolTask {
            device: DeviceId(d),
            run: Box::new(move || Ok::<u64, AccelError>(lane_work(u64::from(d)))),
        })
        .collect()
}

fn bench_pool(c: &mut Criterion, lanes: u32) {
    let mut g = c.benchmark_group("pool");
    g.sample_size(30);

    // Pre-ISSUE-9 shape: one OS thread per lane.
    g.bench_function(format!("thread-per-lane-{lanes}"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..lanes)
                    .map(|d| scope.spawn(move || lane_work(u64::from(d))))
                    .collect();
                for h in handles {
                    acc = acc.wrapping_add(h.join().expect("lane thread"));
                }
            });
            criterion::black_box(acc)
        })
    });

    for workers in [1usize, 2, 4, 8] {
        g.bench_function(format!("pooled-{lanes}-w{workers}"), |b| {
            b.iter(|| {
                let results = lane_exec::run_pool(workers, pool_tasks(lanes), None).results;
                let acc = results
                    .into_iter()
                    .map(|r| r.expect("lane ok"))
                    .fold(0u64, u64::wrapping_add);
                criterion::black_box(acc)
            })
        });
    }
    g.finish();
}

fn pool_64(c: &mut Criterion) {
    bench_pool(c, 64);
}

fn pool_256(c: &mut Criterion) {
    bench_pool(c, 256);
}

/// One thread spawn + join round trip with no work: the fixed per-lane
/// overhead the pool amortizes (thread-per-lane pays it N times, the
/// pool W times).
fn spawn_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool");
    g.sample_size(200);
    g.bench_function("spawn-join", |b| {
        b.iter(|| {
            std::thread::Builder::new()
                .name("spawn-probe".into())
                .spawn(|| criterion::black_box(0u64))
                .expect("spawn")
                .join()
                .expect("join")
        })
    });
    g.finish();
}

criterion_group!(benches, merge_pair, merge_8, merge_64, merge_256, pool_64, pool_256, spawn_join);
criterion_main!(benches);
