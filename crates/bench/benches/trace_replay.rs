//! Trace capture + offline replay throughput (ISSUE 6).
//!
//! A representative five-tool suite profiles one scaled BERT inference
//! batch on the simulated RTX 3060 with full fine-grained subscription;
//! the session's normalized event stream is captured once with
//! [`TraceWriter`]. Three measurement families then quantify the
//! capture/analysis decoupling:
//!
//! * `capture/encode` — serializing the captured stream into trace bytes
//!   (events/s through the shard encoder; the hot-path cost a live
//!   capture adds per event).
//! * `replay/parse+replay` and `replay/decoded` — full offline analysis
//!   from bytes (parse + replay) and from a pre-parsed reader (replay
//!   only), both driving a fresh tool suite to a merged report.
//! * `live/dispatch` — the same events through the same fresh suite via
//!   direct processor dispatch: the analysis cost a live run pays while
//!   the workload waits. Replay at or above this rate means analysis
//!   cost moved entirely off the profiled run.
//!
//! The startup banner prints the stream size and bytes/event on disk.
//! Numbers land in `BENCH_trace_replay.json`; run with
//! `cargo bench -p pasta-bench --bench trace_replay`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dl_framework::models::{ModelZoo, RunKind};
use pasta_core::processor::EventProcessor;
use pasta_core::tool::{Tool, ToolCollection};
use pasta_core::{Event, Pasta, PastaSession};
use pasta_tools::{
    BarrierStallTool, HotnessTool, KernelFrequencyTool, MemoryCharacteristicsTool, OpKernelMapTool,
};
use pasta_trace::{replay, replay_decoded, Trace, TraceReader, TraceWriter};

fn suite() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(KernelFrequencyTool::new()),
        Box::new(BarrierStallTool::new()),
        Box::new(HotnessTool::new(64)),
        Box::new(OpKernelMapTool::new()),
        Box::new(MemoryCharacteristicsTool::new()),
    ]
}

fn session() -> PastaSession {
    Pasta::builder()
        .rtx_3060()
        .tool(KernelFrequencyTool::new())
        .tool(BarrierStallTool::new())
        .tool(HotnessTool::new(64))
        .tool(OpKernelMapTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .expect("session builds")
}

/// Captures one profiled run and returns the trace plus the decoded
/// per-shard streams (for the encode and live-dispatch legs).
fn captured() -> (Trace, Vec<(accel_sim::DeviceId, Vec<Event>)>) {
    let mut session = session();
    let writer = TraceWriter::attach(&session);
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
        .expect("profiled run succeeds");
    let trace = writer.finish(&session);
    let reader = TraceReader::parse(trace.as_bytes()).expect("own trace parses");
    let shards = reader
        .shards()
        .iter()
        .map(|s| (s.device, s.events.clone()))
        .collect();
    (trace, shards)
}

fn fresh_tools() -> ToolCollection {
    let mut tools = ToolCollection::new();
    for tool in suite() {
        tools.register(tool);
    }
    tools
}

fn bench_all(c: &mut Criterion) {
    let (trace, shards) = captured();
    let events: u64 = shards.iter().map(|(_, e)| e.len() as u64).sum();
    println!(
        "trace_replay: {} events, {} bytes on disk, {:.2} bytes/event",
        events,
        trace.len(),
        trace.len() as f64 / events as f64
    );

    let mut g = c.benchmark_group("capture");
    g.sample_size(30);
    g.bench_function("encode", |b| {
        b.iter(|| {
            let borrowed: Vec<_> = shards.iter().map(|(d, e)| (*d, e.as_slice())).collect();
            black_box(Trace::from_shards(borrowed, None))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("replay");
    g.sample_size(30);
    g.bench_function("parse+replay", |b| {
        b.iter(|| {
            let mut tools = fresh_tools();
            black_box(replay(&trace, &mut tools).expect("replay succeeds"))
        })
    });
    let reader = TraceReader::parse(trace.as_bytes()).expect("parses");
    g.bench_function("decoded", |b| {
        b.iter(|| {
            let mut tools = fresh_tools();
            black_box(replay_decoded(&reader, &mut tools).expect("replay succeeds"))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("live");
    g.sample_size(30);
    g.bench_function("dispatch", |b| {
        b.iter(|| {
            let mut p = EventProcessor::new();
            p.tools = fresh_tools();
            for (_, events) in &shards {
                for event in events {
                    p.process(event);
                }
            }
            black_box(p.events_processed())
        })
    });
    g.finish();
}

criterion_group!(trace_replay, bench_all);
criterion_main!(trace_replay);
