//! Shared-range (peer-to-peer) UVM cost and the private-path regression
//! guard (ISSUE 5).
//!
//! The coherence directory behind shared managed ranges is `Arc`-held
//! with one lock per range — and the acceptance criterion is that the
//! **private**-range residency hot path stays lock-free and unregressed.
//! Three per-launch configs measure exactly that:
//!
//! * `per-launch/private-no-shared` — the ISSUE 4 hot path, byte for
//!   byte: a lane-forked manager resolving an oversubscribed private
//!   window per launch. Must match `per-launch/full-forked` in
//!   `BENCH_uvm_parallel.json` within noise.
//! * `per-launch/private-shared-present` — the same private launch while
//!   an *unrelated* shared range is registered: prices the only code the
//!   private path gains (a map probe plus victim-identity tracking on
//!   eviction), still without touching any lock.
//! * `per-launch/peer-duplicate` — the shared path at full tilt: a
//!   non-owner lane whose every launch read-duplicates an oversubscribed
//!   window over the peer link (directory lock, holder registration,
//!   eviction deregistration included).
//!
//! `2dev-shared-read` is the threaded topology: two lanes, one shared
//! region (owner = device 0), both streaming it concurrently through
//! their own hub shards. On the 1-CPU build container it timeslices; on
//! multi-core hosts it shows the per-range lock is off the private path.
//!
//! Numbers land in `BENCH_uvm_p2p.json`; run with
//! `cargo bench -p pasta-bench --bench uvm_p2p`.

use accel_sim::{AccessSpec, DeviceId, DeviceRuntime, DeviceSpec, Dim3, KernelBody, KernelDesc};
use criterion::{criterion_group, criterion_main, Criterion};
use pasta_core::handler::attach_nv;
use pasta_core::hub::{Hub, SharedHub};
use pasta_core::processor::EventProcessor;
use pasta_tools::{MemoryCharacteristicsTool, MemoryTimelineTool, UvmPrefetchAdvisor};
use std::sync::Arc;
use uvm_sim::{UvmConfig, UvmManager};
use vendor_nv::CudaContext;

/// Managed region each lane allocates.
const REGION: u64 = 64 << 20;
/// Window one launch streams.
const WINDOW: u64 = 8 << 20;
/// Managed budget per device — 2x oversubscribed, so rotation evicts.
const BUDGET: u64 = 32 << 20;
/// Launches per device thread per threaded iteration.
const LAUNCHES_PER_ITER: u64 = 8;

fn processor() -> EventProcessor {
    let mut p = EventProcessor::new();
    p.tools.register(Box::new(UvmPrefetchAdvisor::new()));
    p.tools.register(Box::new(MemoryTimelineTool::new()));
    p.tools.register(Box::new(MemoryCharacteristicsTool::new()));
    p
}

fn sharded_hub(devices: u32) -> SharedHub {
    let shards = (0..devices)
        .map(|d| {
            let p = processor();
            let p = if d == 0 {
                p
            } else {
                p.fork().expect("suite forks")
            };
            (DeviceId(d), p)
        })
        .collect();
    Arc::new(Hub::sharded(shards).unwrap())
}

fn parent_manager() -> UvmManager {
    let mut m = UvmManager::new(UvmConfig::default());
    // NVLink-class peer link, as the session builder configures from the
    // A100 spec.
    m.add_device_p2p(BUDGET, 24.0, 300.0, 25_000);
    m.add_device_p2p(BUDGET, 24.0, 300.0, 25_000);
    m
}

/// A lane context pinned to `device`, wired into `hub`, with a forked
/// manager attached and a `REGION`-byte managed buffer allocated.
fn lane_context(
    device: u32,
    hub: &SharedHub,
    parent: &UvmManager,
) -> (CudaContext, accel_sim::DevicePtr) {
    let mut ctx = CudaContext::new(vec![DeviceSpec::a100_80gb(), DeviceSpec::a100_80gb()]);
    ctx.set_device(DeviceId(device)).unwrap();
    attach_nv(&mut ctx, Arc::clone(hub));
    ctx.attach_uvm(parent.fork(DeviceId(device)));
    let buf = ctx.malloc_managed(REGION).unwrap();
    (ctx, buf)
}

/// One UVM-instrumented launch streaming the `i`-th window of `buf`.
fn drive_launch(ctx: &mut CudaContext, buf: accel_sim::DevicePtr, i: u64) {
    let offset = (i % (REGION / WINDOW)) * WINDOW;
    let desc = KernelDesc::new("uvm_stream_kernel", Dim3::linear(64), Dim3::linear(128))
        .arg(buf, REGION)
        .body(KernelBody::default().access(AccessSpec::load(0, WINDOW).with_range(offset, WINDOW)));
    ctx.launch(desc).unwrap();
}

/// Marks the lane's managed region shared with `owner` through the
/// lane's attached manager.
fn share_region(ctx: &mut CudaContext, buf: accel_sim::DevicePtr, owner: DeviceId) {
    let res = ctx.engine_mut().residency_mut().expect("uvm attached");
    res.register_shared(buf.addr(), REGION, owner);
}

/// `per-launch/private-no-shared`: the pre-existing private hot path on
/// a lane-forked manager — the regression guard against
/// `BENCH_uvm_parallel.json`'s `full-forked`.
fn per_launch_private_no_shared(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-launch");
    g.sample_size(120);
    let parent = parent_manager();
    let hub = sharded_hub(1);
    let (mut ctx, buf) = lane_context(0, &hub, &parent);
    let mut i = 0u64;
    g.bench_function("private-no-shared", |b| {
        b.iter(|| {
            drive_launch(&mut ctx, buf, i);
            i += 1;
        })
    });
    g.finish();
}

/// `per-launch/private-shared-present`: the same private launch with an
/// unrelated shared range registered — the shared map probe plus
/// eviction victim tracking, no lock.
fn per_launch_private_shared_present(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-launch");
    g.sample_size(120);
    let parent = parent_manager();
    let hub = sharded_hub(1);
    let (mut ctx, buf) = lane_context(0, &hub, &parent);
    // A second managed region, marked shared; the benchmarked launches
    // never touch it.
    let other = ctx.malloc_managed(REGION).unwrap();
    share_region(&mut ctx, other, DeviceId(0));
    let mut i = 0u64;
    g.bench_function("private-shared-present", |b| {
        b.iter(|| {
            drive_launch(&mut ctx, buf, i);
            i += 1;
        })
    });
    g.finish();
}

/// `per-launch/peer-duplicate`: a non-owner lane whose every launch
/// read-duplicates an oversubscribed window — the full shared path with
/// directory traffic.
fn per_launch_peer_duplicate(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-launch");
    g.sample_size(120);
    let parent = parent_manager();
    let hub = sharded_hub(2);
    let (mut ctx, buf) = lane_context(1, &hub, &parent);
    share_region(&mut ctx, buf, DeviceId(0));
    let mut i = 0u64;
    g.bench_function("peer-duplicate", |b| {
        b.iter(|| {
            drive_launch(&mut ctx, buf, i);
            i += 1;
        })
    });
    g.finish();
}

/// `uvm-p2p/2dev-shared-read`: both lanes stream the shared region
/// concurrently — device 0 as the owner (host faults), device 1
/// read-duplicating, each through its own hub shard.
fn two_device_shared_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("uvm-p2p");
    g.sample_size(40);
    let parent = parent_manager();
    let hub = sharded_hub(2);
    let mut contexts: Vec<_> = (0..2).map(|d| lane_context(d, &hub, &parent)).collect();
    for (ctx, buf) in contexts.iter_mut() {
        share_region(ctx, *buf, DeviceId(0));
    }
    let mut iter = 0u64;
    g.bench_function("2dev-shared-read", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for (ctx, buf) in contexts.iter_mut() {
                    let buf = *buf;
                    scope.spawn(move || {
                        for l in 0..LAUNCHES_PER_ITER {
                            drive_launch(ctx, buf, iter * LAUNCHES_PER_ITER + l);
                        }
                    });
                }
            });
            iter += 1;
        })
    });
    g.finish();
}

criterion_group!(
    uvm_p2p,
    per_launch_private_no_shared,
    per_launch_private_shared_present,
    per_launch_peer_duplicate,
    two_device_shared_read
);
criterion_main!(uvm_p2p);
