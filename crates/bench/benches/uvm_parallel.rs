//! Multi-device UVM-instrumented emission throughput (ISSUE 4).
//!
//! Every launch streams an 8 MiB window of a 64 MiB managed region
//! against a 32 MiB device budget, so the UVM model does real work per
//! launch — demand faults, migrations and LRU evictions with write-back
//! — and every launch emits a `UvmFault` event analyzed by the three
//! UVM-consuming tools (uvm-prefetch-advisor, memory-timeline,
//! memory-characteristics).
//!
//! Two topologies face off:
//!
//! * **forked** — the shard model this PR introduces: each device lane
//!   owns a [`UvmManager`] forked from one parent
//!   ([`UvmManager::fork`]), resolving residency with no shared lock,
//!   and emits into its own hub shard. Lane state merges back
//!   deterministically at session end ([`UvmManager::merge`]).
//! * **shared-mutex** — the pre-refactor alternative: one `UvmManager`
//!   behind a mutex serves every device (lanes previously skipped UVM
//!   entirely; a shared locked manager is the only way a single-manager
//!   session could have covered them), and all events funnel into one
//!   hub shard.
//!
//! As with `multi_device.rs`, the build container exposes one CPU, so
//! the threaded `uvm-parallel/*` configs timeslice and tie; the
//! machine-independent serialization decomposition carries the
//! acceptance ratio: `A` = one device's complete UVM-instrumented
//! launch (`per-launch/full-forked`), `B` = the residency resolution
//! that must hold the shared manager's lock
//! (`per-launch/resolve-under-lock`). With ≥ 2 cores a shared mutex
//! bounds a 2-device launch pair from below by `2B`; forked managers
//! run the pair in `A`. Throughput ratio = `max(A, 2B) / A`.
//!
//! Numbers land in `BENCH_uvm_parallel.json`; run with
//! `cargo bench -p pasta-bench --bench uvm_parallel`.

use accel_sim::{
    AccessKind, AccessOutcome, AccessSpec, DeviceId, DeviceRuntime, DeviceSpec, Dim3, KernelBody,
    KernelDesc, ResidencyAdvice, ResidencyModel,
};
use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use pasta_core::handler::attach_nv;
use pasta_core::hub::{new_shared, Hub, SharedHub};
use pasta_core::processor::EventProcessor;
use pasta_tools::{MemoryCharacteristicsTool, MemoryTimelineTool, UvmPrefetchAdvisor};
use std::sync::Arc;
use uvm_sim::{UvmConfig, UvmManager};
use vendor_nv::CudaContext;

/// Managed region each lane allocates.
const REGION: u64 = 64 << 20;
/// Window one launch streams.
const WINDOW: u64 = 8 << 20;
/// Managed budget per device — 2x oversubscribed, so rotation evicts.
const BUDGET: u64 = 32 << 20;
/// Launches per device thread per threaded iteration.
const LAUNCHES_PER_ITER: u64 = 8;

/// The three UVM-consuming tools, as the session registers them.
fn processor() -> EventProcessor {
    let mut p = EventProcessor::new();
    p.tools.register(Box::new(UvmPrefetchAdvisor::new()));
    p.tools.register(Box::new(MemoryTimelineTool::new()));
    p.tools.register(Box::new(MemoryCharacteristicsTool::new()));
    p
}

fn sharded_hub(devices: u32) -> SharedHub {
    let shards = (0..devices)
        .map(|d| {
            let p = processor();
            let p = if d == 0 {
                p
            } else {
                p.fork().expect("suite forks")
            };
            (DeviceId(d), p)
        })
        .collect();
    Arc::new(Hub::sharded(shards).unwrap())
}

fn parent_manager() -> UvmManager {
    let mut m = UvmManager::new(UvmConfig::default());
    m.add_device(BUDGET, 24.0, 25_000);
    m.add_device(BUDGET, 24.0, 25_000);
    m
}

/// One `UvmManager` behind a lock serving every lane — the
/// shared-manager baseline topology.
struct SharedResidency(Arc<Mutex<UvmManager>>);

impl ResidencyModel for SharedResidency {
    fn is_managed(&self, addr: u64) -> bool {
        self.0.lock().is_managed(addr)
    }
    fn on_kernel_access(
        &mut self,
        device: DeviceId,
        base: u64,
        len: u64,
        bytes: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        self.0
            .lock()
            .on_kernel_access(device, base, len, bytes, kind)
    }
    fn register(&mut self, base: u64, len: u64) {
        self.0.lock().register(base, len);
    }
    fn unregister(&mut self, base: u64) {
        self.0.lock().unregister(base);
    }
    fn prefetch(&mut self, device: DeviceId, base: u64, len: u64) -> u64 {
        self.0.lock().prefetch(device, base, len)
    }
    fn advise(&mut self, device: DeviceId, base: u64, len: u64, advice: ResidencyAdvice) {
        self.0.lock().advise(device, base, len, advice);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }
}

/// A lane context pinned to `device`, wired into `hub`, with its
/// residency model already attached and a `REGION`-byte managed buffer
/// allocated (registering it with the model).
fn lane_context(
    device: u32,
    hub: &SharedHub,
    shared: Option<Arc<Mutex<UvmManager>>>,
    parent: &UvmManager,
) -> (CudaContext, accel_sim::DevicePtr) {
    let mut ctx = CudaContext::new(vec![DeviceSpec::a100_80gb(), DeviceSpec::a100_80gb()]);
    ctx.set_device(DeviceId(device)).unwrap();
    attach_nv(&mut ctx, Arc::clone(hub));
    match shared {
        Some(manager) => ctx
            .engine_mut()
            .set_residency(Box::new(SharedResidency(manager))),
        None => ctx.attach_uvm(parent.fork(DeviceId(device))),
    }
    let buf = ctx.malloc_managed(REGION).unwrap();
    (ctx, buf)
}

/// One UVM-instrumented launch streaming the `i`-th window.
fn drive_launch(ctx: &mut CudaContext, buf: accel_sim::DevicePtr, i: u64) {
    let offset = (i % (REGION / WINDOW)) * WINDOW;
    let desc = KernelDesc::new("uvm_stream_kernel", Dim3::linear(64), Dim3::linear(128))
        .arg(buf, REGION)
        .body(KernelBody::default().access(AccessSpec::load(0, WINDOW).with_range(offset, WINDOW)));
    ctx.launch(desc).unwrap();
}

/// One threaded iteration: each device thread drives its launches
/// through its own context (and residency topology) into `hub`.
fn drive_concurrent(contexts: &mut [(CudaContext, accel_sim::DevicePtr)], iter: u64) {
    std::thread::scope(|scope| {
        for (ctx, buf) in contexts.iter_mut() {
            let buf = *buf;
            scope.spawn(move || {
                for l in 0..LAUNCHES_PER_ITER {
                    drive_launch(ctx, buf, iter * LAUNCHES_PER_ITER + l);
                }
            });
        }
    });
}

fn bench_topology(c: &mut Criterion, label: &str, shared: bool) {
    let mut g = c.benchmark_group("uvm-parallel");
    g.sample_size(40);
    let parent = parent_manager();
    let (hub, shared_manager) = if shared {
        (
            new_shared(processor()),
            Some(Arc::new(Mutex::new(parent_manager()))),
        )
    } else {
        (sharded_hub(2), None)
    };
    let mut contexts: Vec<_> = (0..2)
        .map(|d| lane_context(d, &hub, shared_manager.clone(), &parent))
        .collect();
    let mut iter = 0u64;
    g.bench_function(label, |b| {
        b.iter(|| {
            drive_concurrent(&mut contexts, iter);
            iter += 1;
        })
    });
    g.finish();
}

fn two_device_forked(c: &mut Criterion) {
    bench_topology(c, "2dev-forked", false);
}

fn two_device_shared_mutex(c: &mut Criterion) {
    bench_topology(c, "2dev-shared-mutex", true);
}

/// `A`: one device's complete UVM-instrumented launch — engine cost
/// model, lane-local residency resolution (fault + migrate + evict),
/// host callbacks, hub dispatch to the three tools.
fn per_launch_full_forked(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-launch");
    g.sample_size(120);
    let parent = parent_manager();
    let hub = sharded_hub(1);
    let (mut ctx, buf) = lane_context(0, &hub, None, &parent);
    let mut i = 0u64;
    g.bench_function("full-forked", |b| {
        b.iter(|| {
            drive_launch(&mut ctx, buf, i);
            i += 1;
        })
    });
    g.finish();
}

/// `B`: the slice of the same launch that must hold the shared
/// manager's lock — exactly the `on_kernel_access` resolution the
/// engine performs for the launch's managed access stream. With one
/// shared manager, two devices' `B`s serialize; with per-lane forks
/// they overlap.
fn per_launch_resolve_under_lock(c: &mut Criterion) {
    let mut g = c.benchmark_group("per-launch");
    g.sample_size(120);
    let shared = Arc::new(Mutex::new(parent_manager()));
    let base = 0x4000_0000_0000u64; // MANAGED_BASE: first engine allocation
    shared.lock().register(base, REGION);
    let mut i = 0u64;
    g.bench_function("resolve-under-lock", |b| {
        b.iter(|| {
            let offset = (i % (REGION / WINDOW)) * WINDOW;
            let mut manager = shared.lock();
            manager.on_kernel_access(DeviceId(0), base + offset, WINDOW, WINDOW, AccessKind::Load);
            i += 1;
        })
    });
    g.finish();
}

criterion_group!(
    uvm_parallel,
    two_device_forked,
    two_device_shared_mutex,
    per_launch_full_forked,
    per_launch_resolve_under_lock
);
criterion_main!(uvm_parallel);
