//! Criterion benches: wall-clock cost of regenerating each paper
//! table/figure at quick scale. These time the *framework and simulator*
//! themselves (the reproduced results use virtual time and are asserted in
//! the library tests).

use criterion::{criterion_group, criterion_main, Criterion};
use pasta_bench as b;

fn quick() -> b::ExpScale {
    b::ExpScale::quick()
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("figure7_kernel_frequency", |bench| {
        bench.iter(|| b::fig7::run(quick()).expect("fig7"));
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("table5_memory_characteristics", |bench| {
        bench.iter(|| b::table5::run(quick()).expect("table5"));
    });
}

fn bench_fig9_cell(c: &mut Criterion) {
    use accel_sim::DeviceSpec;
    use dl_framework::models::ModelZoo;
    c.bench_function("figure9_bert_a100_all_variants", |bench| {
        bench.iter(|| {
            for variant in b::fig9_10::Variant::all() {
                b::fig9_10::measure(
                    ModelZoo::Bert,
                    "A100",
                    DeviceSpec::a100_80gb(),
                    variant,
                    quick(),
                )
                .expect("measure");
            }
        });
    });
}

fn bench_fig11_cell(c: &mut Criterion) {
    use accel_sim::DeviceSpec;
    use dl_framework::models::ModelZoo;
    c.bench_function("figure11_resnet18_3060_cell", |bench| {
        bench.iter(|| {
            b::fig11_12::measure(
                ModelZoo::ResNet18,
                "3060",
                DeviceSpec::rtx_3060(),
                1.0,
                quick(),
            )
            .expect("measure")
        });
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("figure13_hotness", |bench| {
        bench.iter(|| b::fig13::run(quick()).expect("fig13"));
    });
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("figure14_vendor_contrast", |bench| {
        bench.iter(|| b::fig14::run(quick()).expect("fig14"));
    });
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("figure15_parallelism", |bench| {
        bench.iter(|| b::fig15::run(quick()).expect("fig15"));
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7, bench_table5, bench_fig9_cell, bench_fig11_cell,
              bench_fig13, bench_fig14, bench_fig15
}
criterion_main!(experiments);
