//! Inference-serving throughput (ISSUE 10).
//!
//! Prices the continuous-batching serving scenario end to end — the
//! seeded request stream, paged managed KV caches (one registration /
//! teardown per conversation), the shared peer-duplicated weight range,
//! and the per-step prefill/decode kernel stream — on the bounded lane
//! pool versus the lane-at-a-time sequential reference, with the budget
//! both unconstrained and oversubscribed:
//!
//! * `serve/seq-L{N}` — sequential reference, N lanes, no budget: the
//!   scheduler + kernel-stream cost with the UVM machinery quiet.
//! * `serve/pooled-L{N}-w2` — same stream on the 2-worker pool. On the
//!   1-CPU build container lanes timeslice, so this prices pool
//!   dispatch overhead, not parallel speedup; on a multi-core host the
//!   lanes overlap.
//! * `serve/oversub-L{N}` — sequential, budget at half the weight
//!   range: every step pays demand faults, evictions and peer
//!   re-duplication, pricing the full eviction machinery under KV
//!   churn.
//! * `kv/page-churn` — the unit cost the serving loop leans on: one
//!   managed page malloc (UVM registration) + free (teardown) through
//!   the runtime facade.
//!
//! Numbers land in `BENCH_serving.json`; run with
//! `cargo bench -p pasta-bench --bench serving`.

use accel_sim::{DeviceId, DeviceRuntime, DeviceSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use dl_framework::serving::{serve, serve_sequential_reference, ServingConfig};
use dl_framework::DType;
use pasta_core::{ParallelConfig, Pasta, PastaSession, UvmSetup};
use uvm_sim::{UvmConfig, UvmManager};
use vendor_nv::CudaContext;

fn session(lanes: usize, budget: Option<u64>) -> PastaSession {
    Pasta::builder()
        .devices(vec![DeviceSpec::a100_80gb(); lanes])
        .parallel(ParallelConfig {
            max_lane_threads: 2,
            ..ParallelConfig::default()
        })
        .uvm(UvmSetup {
            budget_bytes: budget,
            ..UvmSetup::default()
        })
        .build()
        .expect("session builds")
}

fn devices(n: usize) -> Vec<DeviceId> {
    (0..n as u32).map(DeviceId).collect()
}

fn serve_once(lanes: usize, budget: Option<u64>, pooled: bool) -> u64 {
    let cfg = ServingConfig::tiny();
    let mut s = session(lanes, budget);
    let run = s
        .run_parallel(&devices(lanes), |ls| {
            if pooled {
                serve(ls, &cfg)
            } else {
                serve_sequential_reference(ls, &cfg)
            }
        })
        .expect("serving completes");
    run.completed()
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    for lanes in [1usize, 4] {
        g.bench_function(format!("seq-L{lanes}"), |b| {
            b.iter(|| serve_once(lanes, None, false));
        });
        g.bench_function(format!("pooled-L{lanes}-w2"), |b| {
            b.iter(|| serve_once(lanes, None, true));
        });
        // Half the weight bytes: weights + live KV thrash the budget.
        let budget = ServingConfig::tiny().dims.param_bytes(DType::F32) / 2;
        g.bench_function(format!("oversub-L{lanes}"), |b| {
            b.iter(|| serve_once(lanes, Some(budget), false));
        });
    }
    g.finish();
}

fn bench_kv_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv");
    let page = ServingConfig::tiny().kv_page_bytes();
    let mut ctx = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
    let mut uvm = UvmManager::new(UvmConfig::default());
    uvm.add_device(64 << 20, 24.0, 25_000);
    ctx.attach_uvm(uvm);
    g.bench_function("page-churn", |b| {
        b.iter(|| {
            // One conversation's lifecycle at the memory layer: managed
            // page in (registers with residency), page out (unregisters).
            let ptr = ctx.malloc_managed(page).expect("managed page");
            ctx.free(ptr).expect("teardown");
        });
    });
    g.finish();
}

criterion_group!(benches, bench_serve, bench_kv_churn);
criterion_main!(benches);
