//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * GPU-resident analysis thread-group width (who pays when the on-device
//!   analysis pool shrinks);
//! * trace-buffer capacity (stall frequency of the CPU-analysis path);
//! * UVM oversubscription sweep 1×..4× (generalizing Figs. 11–12);
//! * record sampling rate (the `ACCEL_PROF_ENV_SAMPLE_RATE` escape hatch).
//!
//! Each bench prints the *simulated* metric it ablates (the design signal)
//! while Criterion measures the harness's own wall-clock cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl_framework::models::{ModelZoo, RunKind};
use pasta_bench::ExpScale;
use pasta_core::{BackendChoice, Pasta, UvmSetup};
use pasta_tools::{MemoryCharacteristicsTool, UvmPrefetchAdvisor};
use uvm_sim::PrefetchGranularity;
use vendor_nv::sanitizer::SanitizerConfig;

fn scale() -> ExpScale {
    ExpScale::quick()
}

/// Simulated overhead for a sanitizer config on a quick BERT run.
fn overhead_with(config: SanitizerConfig) -> u64 {
    let mut session = Pasta::builder()
        .a100()
        .tool(MemoryCharacteristicsTool::new())
        .backend(BackendChoice::Sanitizer(config))
        .build()
        .expect("build");
    let s = scale();
    let report = session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, s.batch_divisor)
        .expect("run");
    report.overhead.total_ns()
}

fn ablate_analysis_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gpu_analysis_threads");
    group.sample_size(10);
    for threads in [32u64, 256, 1_024, 4_096, 16_384] {
        let overhead =
            overhead_with(SanitizerConfig::gpu_resident().with_analysis_threads(threads));
        println!("gpu_analysis_threads={threads}: simulated overhead {overhead} ns");
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    overhead_with(SanitizerConfig::gpu_resident().with_analysis_threads(t))
                });
            },
        );
    }
    group.finish();
}

fn ablate_trace_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_trace_buffer_bytes");
    group.sample_size(10);
    for bytes in [256u64 << 10, 1 << 20, 4 << 20, 16 << 20] {
        let overhead = overhead_with(SanitizerConfig::cpu_post_process().with_buffer_bytes(bytes));
        println!("trace_buffer={bytes}B: simulated overhead {overhead} ns");
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |bench, &b| {
            bench.iter(|| overhead_with(SanitizerConfig::cpu_post_process().with_buffer_bytes(b)));
        });
    }
    group.finish();
}

fn ablate_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sampling_rate");
    group.sample_size(10);
    for rate in [1u32, 10, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |bench, &r| {
            bench.iter(|| {
                let mut session = Pasta::builder()
                    .a100()
                    .tool(MemoryCharacteristicsTool::new())
                    .sampling(r)
                    .build()
                    .expect("build");
                let s = scale();
                session
                    .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, s.batch_divisor)
                    .expect("run")
                    .records
            });
        });
    }
    group.finish();
}

/// One UVM cell at a given oversubscription factor; returns normalized
/// (object, tensor) times — the Figs. 11/12 sweep generalized.
fn uvm_cell(oversubscription: f64) -> (f64, f64) {
    let s = ExpScale {
        batch_divisor: 4,
        inference_steps: 1,
        training_steps: 1,
    };
    let run = |budget: u64, plan: Option<uvm_sim::PrefetchPlan>| {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(UvmPrefetchAdvisor::new())
            .uvm(UvmSetup {
                budget_bytes: Some(budget),
                ..UvmSetup::default()
            })
            .build()
            .expect("build");
        if let Some(p) = plan {
            session.set_prefetch_plan(p);
        }
        let r = session
            .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, s.batch_divisor)
            .expect("run");
        let advisor = session
            .with_tool_mut("uvm-prefetch-advisor", |t: &mut UvmPrefetchAdvisor| {
                std::mem::take(t)
            })
            .expect("tool");
        (r.profiled_time.as_nanos(), advisor, r.peak_reserved)
    };
    let (_, _, footprint) = run(u64::MAX >> 1, None);
    let budget = ((footprint as f64 / oversubscription) as u64).max(8 << 20);
    let (base, advisor, _) = run(budget, None);
    let (obj, _, _) = run(
        budget,
        Some(advisor.build_plan(PrefetchGranularity::Object)),
    );
    let (ten, _, _) = run(
        budget,
        Some(advisor.build_plan(PrefetchGranularity::Tensor)),
    );
    (obj as f64 / base as f64, ten as f64 / base as f64)
}

fn ablate_oversubscription(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_oversubscription_sweep");
    group.sample_size(10);
    for factor in [1.0f64, 2.0, 3.0, 4.0] {
        let (obj, ten) = uvm_cell(factor);
        println!("oversubscription={factor}: object {obj:.2}x  tensor {ten:.2}x of baseline");
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |bench, &f| {
            bench.iter(|| uvm_cell(f));
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_analysis_threads, ablate_trace_buffer, ablate_sampling,
              ablate_oversubscription
}
criterion_main!(ablations);
