//! CUDA runtime callback events.
//!
//! These are the "raw vendor events" of the NVIDIA platform — what Compute
//! Sanitizer's host callbacks (`SANITIZER_CBID_LAUNCH_BEGIN`,
//! `SANITIZER_..._MEMORY_ALLOC`, …) deliver. The PASTA event handler
//! subscribes to these and normalizes them into its unified event model.
//!
//! NVIDIA conventions reproduced here deliberately differ from the AMD ones
//! in `vendor-amd` (positive free sizes here, negative deltas there;
//! `cuda*` API names here, `hip*` there) so that the handler's
//! normalization layer has real work to do.

use accel_sim::{CopyDirection, DeviceId, Dim3, LaunchId, SimTime, StreamId, Symbol};
use serde::{Deserialize, Serialize};

/// A host-side callback event from the simulated CUDA runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NvCallback {
    /// A driver/runtime API call is entered (`ApiEnter("cudaMalloc")`).
    ApiEnter {
        /// CUDA API symbol name.
        name: &'static str,
        /// Device current at the call.
        device: DeviceId,
        /// Host time at entry.
        at: SimTime,
    },
    /// A driver/runtime API call returned.
    ApiExit {
        /// CUDA API symbol name.
        name: &'static str,
        /// Device current at the call.
        device: DeviceId,
        /// Host time at exit.
        at: SimTime,
    },
    /// `SANITIZER_CBID_LAUNCH_BEGIN`: a kernel is about to run.
    LaunchBegin {
        /// Launch sequence number ("grid id").
        launch: LaunchId,
        /// Device ordinal.
        device: DeviceId,
        /// Stream.
        stream: StreamId,
        /// Kernel symbol, interned.
        name: Symbol,
        /// Grid dimensions.
        grid: Dim3,
        /// Block dimensions.
        block: Dim3,
        /// Device time the kernel starts.
        start: SimTime,
    },
    /// `SANITIZER_CBID_LAUNCH_END`: the kernel completed.
    LaunchEnd {
        /// Launch sequence number.
        launch: LaunchId,
        /// Device ordinal.
        device: DeviceId,
        /// Device time the kernel finished.
        end: SimTime,
    },
    /// `SANITIZER_..._MEMORY_ALLOC`: device or managed memory allocated.
    MemoryAlloc {
        /// Device ordinal.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Size in bytes — **positive**, per CUDA convention.
        bytes: u64,
        /// Allocated via `cudaMallocManaged`.
        managed: bool,
        /// Host time.
        at: SimTime,
    },
    /// `SANITIZER_..._MEMORY_FREE`: memory released.
    MemoryFree {
        /// Device ordinal.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Size in bytes — **positive**, per CUDA convention.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// `cudaMemcpy*` completed.
    Memcpy {
        /// Device ordinal.
        device: DeviceId,
        /// Direction of the copy.
        direction: CopyDirection,
        /// Bytes copied.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// `cudaMemset*` completed.
    Memset {
        /// Device ordinal.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Bytes set.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// `cudaDeviceSynchronize` (or stream sync) completed.
    Synchronize {
        /// Device ordinal.
        device: DeviceId,
        /// Host time after the wait.
        at: SimTime,
    },
    /// A batch memory operation (`cudaMemPrefetchAsync`/`cudaMemAdvise`).
    BatchMemOp {
        /// Device ordinal.
        device: DeviceId,
        /// Operation label (e.g. `"cudaMemPrefetchAsync"`).
        op: &'static str,
        /// Base address.
        addr: u64,
        /// Bytes covered.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// UVM page-fault activity resolved while a kernel ran: the GPU
    /// fault-buffer summary Compute Sanitizer surfaces per launch. The
    /// `device` is always the *faulting* device — the device the kernel
    /// executed on — never the device that happened to be current on the
    /// host thread, so the sharded hub can route it by content.
    UvmFault {
        /// Launch whose accesses faulted.
        launch: LaunchId,
        /// The faulting device.
        device: DeviceId,
        /// Fault groups serviced.
        groups: u64,
        /// Bytes migrated host→device.
        migrated_bytes: u64,
        /// Bytes evicted device→host to make room.
        evicted_bytes: u64,
        /// Device stall charged to the kernel, ns.
        stall_ns: u64,
        /// Host time after the launch was enqueued.
        at: SimTime,
    },
    /// A peer-to-peer coherence operation on a *shared* managed range,
    /// resolved while a kernel ran: either a read duplication (data moved
    /// `src → dst` over NVLink/PCIe peer mappings) or a write
    /// invalidation (`src` wrote, `dst`'s duplicate was dropped). Both
    /// devices ride in the callback so the sharded hub can route the
    /// normalized event to the *destination* device's shard.
    PeerMigrate {
        /// Launch whose accesses triggered the operation.
        launch: LaunchId,
        /// Device the data (or the invalidating write) came from.
        src: DeviceId,
        /// Device whose residency changed.
        dst: DeviceId,
        /// Pages read-duplicated onto `dst`.
        duplicated_pages: u64,
        /// `dst` duplicate pages invalidated by `src`'s write.
        invalidated_pages: u64,
        /// Bytes moved over the peer link (duplications only).
        bytes: u64,
        /// Device stall charged to the launch, ns.
        stall_ns: u64,
        /// Host time after the launch was enqueued.
        at: SimTime,
    },
}

impl NvCallback {
    /// Short callback-id-like label (for logs and tests).
    pub fn cbid(&self) -> &'static str {
        match self {
            NvCallback::ApiEnter { .. } => "NV_API_ENTER",
            NvCallback::ApiExit { .. } => "NV_API_EXIT",
            NvCallback::LaunchBegin { .. } => "SANITIZER_CBID_LAUNCH_BEGIN",
            NvCallback::LaunchEnd { .. } => "SANITIZER_CBID_LAUNCH_END",
            NvCallback::MemoryAlloc { .. } => "SANITIZER_CBID_MEMORY_ALLOC",
            NvCallback::MemoryFree { .. } => "SANITIZER_CBID_MEMORY_FREE",
            NvCallback::Memcpy { .. } => "SANITIZER_CBID_MEMCPY",
            NvCallback::Memset { .. } => "SANITIZER_CBID_MEMSET",
            NvCallback::Synchronize { .. } => "SANITIZER_CBID_SYNCHRONIZE",
            NvCallback::BatchMemOp { .. } => "SANITIZER_CBID_BATCH_MEMOP",
            NvCallback::UvmFault { .. } => "SANITIZER_CBID_UVM_FAULT",
            NvCallback::PeerMigrate { .. } => "SANITIZER_CBID_UVM_PEER_MIGRATE",
        }
    }
}

/// A host-callback subscriber.
pub type NvSubscriber = Box<dyn FnMut(&NvCallback) + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbids_are_distinct_for_alloc_and_free() {
        let alloc = NvCallback::MemoryAlloc {
            device: DeviceId(0),
            addr: 0x100,
            bytes: 64,
            managed: false,
            at: SimTime(0),
        };
        let free = NvCallback::MemoryFree {
            device: DeviceId(0),
            addr: 0x100,
            bytes: 64,
            at: SimTime(1),
        };
        assert_ne!(alloc.cbid(), free.cbid());
        assert!(alloc.cbid().starts_with("SANITIZER_CBID"));
    }

    #[test]
    fn free_sizes_are_positive_by_convention() {
        // The NVIDIA convention: MemoryFree carries a positive size.
        // (vendor-amd reports negative deltas; the PASTA handler normalizes.)
        if let NvCallback::MemoryFree { bytes, .. } = (NvCallback::MemoryFree {
            device: DeviceId(0),
            addr: 0,
            bytes: 4096,
            at: SimTime(0),
        }) {
            assert!(bytes > 0);
        }
    }
}
