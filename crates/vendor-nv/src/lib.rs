//! # vendor-nv — simulated NVIDIA profiling stack
//!
//! The paper's NVIDIA backend uses three real components that this crate
//! reproduces over [`accel_sim`]:
//!
//! * the **CUDA runtime** ([`cuda::CudaContext`]) — `cudaMalloc`,
//!   `cudaMallocManaged`, `cuLaunchKernel`, `cudaMemcpy`,
//!   `cudaMemPrefetchAsync`, `cudaMemAdvise` … — which emits
//!   [`callbacks::NvCallback`] events to subscribers exactly where the real
//!   runtime triggers Compute Sanitizer callbacks;
//! * **Compute Sanitizer** ([`sanitizer`]) — lightweight callbacks that can
//!   patch *memory and barrier* instructions only (the paper's §III-D
//!   coverage limitation), with either GPU-resident or CPU-post-process
//!   trace analysis;
//! * **NVBit** ([`nvbit`]) — full-SASS binary instrumentation: broader
//!   coverage, but it must first dump and parse SASS per kernel and its
//!   per-record trampoline costs more (the paper's §V-B3 overhead source).
//!
//! [`inject`] models the `LD_PRELOAD` vs `CUDA_INJECTION64_PATH` process
//! injection distinction that matters for multi-GPU Megatron runs (§IV-D).

pub mod callbacks;
pub mod cuda;
pub mod inject;
pub mod nvbit;
pub mod sanitizer;

pub use callbacks::{NvCallback, NvSubscriber};
pub use cuda::CudaContext;
pub use inject::{is_spurious, should_instrument, InjectionMethod, ProcessKind};
pub use nvbit::NvbitConfig;
pub use sanitizer::SanitizerConfig;

// Re-export the shared instrumentation machinery under the vendor crate so
// downstream code can name it next to the configs that drive it.
pub use accel_sim::instrument::{
    DeviceTraceSink, OverheadBreakdown, ProfilerHandle, TraceCtx, TraceProfiler,
};
