//! NVBit facade.
//!
//! NVBit (Villa et al., MICRO'19) instruments *all* SASS instructions by
//! rewriting binaries at load time. Compared with Compute Sanitizer it
//! offers broader coverage but pays (a) a one-time SASS dump+parse per
//! kernel to find the instructions of interest, and (b) heavier per-record
//! trampolines — the overhead sources the paper cites in §V-B3. The
//! attachment point here is the analogue of `nvbit_at_cuda_event`.

use crate::cuda::CudaContext;
use accel_sim::instrument::{BackendCosts, ProfilerHandle, TraceProfiler};
use accel_sim::trace::TraceBufferModel;
use accel_sim::{AnalysisMode, InstrCoverage};
use serde::{Deserialize, Serialize};

/// Configuration of an NVBit attachment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvbitConfig {
    /// Record sampling factor; 1 = all.
    pub sampling_rate: u32,
    /// Device trace-buffer size in bytes.
    pub buffer_bytes: u64,
    /// Host time to dump+parse SASS per unique kernel, ns.
    pub sass_parse_ns_per_kernel: u64,
    /// Host analysis cost per record, ns (heavier than Compute Sanitizer:
    /// the CPU must decode packed NVBit records).
    pub cpu_analysis_ns_per_record: f64,
}

impl Default for NvbitConfig {
    fn default() -> Self {
        let base = BackendCosts::nvbit();
        NvbitConfig {
            sampling_rate: 1,
            buffer_bytes: 4 << 20,
            sass_parse_ns_per_kernel: base.sass_parse_ns_per_kernel,
            cpu_analysis_ns_per_record: base.cpu_analysis_ns_per_record,
        }
    }
}

impl NvbitConfig {
    /// Overrides the sampling rate.
    pub fn with_sampling(mut self, rate: u32) -> Self {
        self.sampling_rate = rate.max(1);
        self
    }
}

/// Attaches NVBit instrumentation (always CPU-post-process, matching the
/// NVBit MemTrace reference tool the paper compares against).
pub fn attach(ctx: &mut CudaContext, config: NvbitConfig) -> ProfilerHandle {
    let costs = BackendCosts {
        buffer: TraceBufferModel::with_bytes(config.buffer_bytes),
        sass_parse_ns_per_kernel: config.sass_parse_ns_per_kernel,
        cpu_analysis_ns_per_record: config.cpu_analysis_ns_per_record,
        ..BackendCosts::nvbit()
    };
    let link_bw = ctx.link_bandwidths();
    let (profiler, handle) = TraceProfiler::new(
        InstrCoverage::AllInstructions,
        AnalysisMode::CpuPostProcess,
        costs,
        link_bw,
        config.sampling_rate,
    );
    ctx.install_profiler(Box::new(profiler));
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;

    #[test]
    fn defaults_are_heavier_than_sanitizer() {
        let nvbit = NvbitConfig::default();
        let cs = BackendCosts::sanitizer();
        assert!(nvbit.cpu_analysis_ns_per_record > cs.cpu_analysis_ns_per_record);
        assert!(nvbit.sass_parse_ns_per_kernel > 0);
        assert_eq!(cs.sass_parse_ns_per_kernel, 0);
    }

    #[test]
    fn attach_installs_probe() {
        let mut ctx = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let _handle = attach(&mut ctx, NvbitConfig::default());
        assert!(ctx.has_profiler());
    }

    #[test]
    fn sampling_clamps() {
        assert_eq!(NvbitConfig::default().with_sampling(0).sampling_rate, 1);
    }
}
