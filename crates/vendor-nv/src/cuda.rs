//! Simulated CUDA runtime.
//!
//! [`CudaContext`] owns an [`accel_sim::Engine`] of NVIDIA devices and
//! exposes the runtime surface PASTA intercepts (§IV-A): `cudaMalloc`,
//! `cudaMallocManaged`, `cudaFree`, `cudaMemcpy`, `cudaMemset`,
//! `cuLaunchKernel`, `cudaDeviceSynchronize`, `cudaMemPrefetchAsync`,
//! `cudaMemAdvise`. Every call emits the corresponding
//! [`NvCallback`](crate::NvCallback) to subscribers — the host-callback
//! half of the Compute Sanitizer API.

use crate::callbacks::{NvCallback, NvSubscriber};
use accel_sim::runtime::MemAdvise;
use accel_sim::{
    AccelError, CopyDirection, DeviceId, DeviceProbe, DeviceRuntime, DeviceSpec, Engine,
    KernelDesc, LaunchRecord, ResidencyAdvice, RuntimeStats, SimTime, StreamId, Vendor,
};
use uvm_sim::{PrefetchPlan, UvmManager};

/// The simulated CUDA runtime context.
pub struct CudaContext {
    engine: Engine,
    current: DeviceId,
    subscribers: Vec<NvSubscriber>,
    prefetch_plan: Option<PrefetchPlan>,
    launches_seen: u64,
    uvm_attached: bool,
}

impl std::fmt::Debug for CudaContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CudaContext")
            .field("engine", &self.engine)
            .field("current", &self.current)
            .field("subscribers", &self.subscribers.len())
            .field("uvm_attached", &self.uvm_attached)
            .finish()
    }
}

impl CudaContext {
    /// Creates a context over NVIDIA devices.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty or contains a non-NVIDIA device.
    pub fn new(specs: Vec<DeviceSpec>) -> Self {
        assert!(
            specs.iter().all(|s| s.vendor == Vendor::Nvidia),
            "CudaContext requires NVIDIA device specs"
        );
        CudaContext {
            engine: Engine::new(specs),
            current: DeviceId(0),
            subscribers: Vec::new(),
            prefetch_plan: None,
            launches_seen: 0,
            uvm_attached: false,
        }
    }

    /// Subscribes to host callbacks (the `sanitizerSubscribe` analogue).
    pub fn subscribe(&mut self, subscriber: NvSubscriber) {
        self.subscribers.push(subscriber);
    }

    /// Number of active host-callback subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Installs a device instrumentation probe (used by
    /// [`crate::sanitizer::attach`] / [`crate::nvbit::attach`]).
    pub fn install_profiler(&mut self, probe: Box<dyn DeviceProbe>) {
        self.engine.set_probe(probe);
    }

    /// Removes the device instrumentation probe.
    pub fn remove_profiler(&mut self) {
        let _ = self.engine.take_probe();
    }

    /// True when a device probe is installed.
    pub fn has_profiler(&self) -> bool {
        self.engine.has_probe()
    }

    /// Attaches a UVM manager as the engine's residency model; managed
    /// allocations will fault/migrate through it.
    pub fn attach_uvm(&mut self, uvm: UvmManager) {
        self.engine.set_residency(Box::new(uvm));
        self.uvm_attached = true;
    }

    /// True when UVM is attached.
    pub fn has_uvm(&self) -> bool {
        self.uvm_attached
    }

    /// Installs a prefetch plan replayed before each subsequent launch.
    pub fn set_prefetch_plan(&mut self, plan: PrefetchPlan) {
        self.prefetch_plan = Some(plan);
        self.launches_seen = 0;
    }

    /// Removes the prefetch plan.
    pub fn clear_prefetch_plan(&mut self) {
        self.prefetch_plan = None;
    }

    /// Host-link bandwidths per device, GB/s (profiler construction input).
    pub fn link_bandwidths(&self) -> Vec<f64> {
        self.engine
            .device_ids()
            .into_iter()
            .map(|d| self.engine.device(d).spec().link_bandwidth_gbps)
            .collect()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (capacity limiting, cost calibration).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn emit(&mut self, cb: NvCallback) {
        for s in &mut self.subscribers {
            s(&cb);
        }
    }

    fn emit_api(&mut self, name: &'static str) {
        let (device, at) = (self.current, self.engine.host_now());
        self.emit(NvCallback::ApiEnter { name, device, at });
    }

    fn emit_api_exit(&mut self, name: &'static str) {
        let (device, at) = (self.current, self.engine.host_now());
        self.emit(NvCallback::ApiExit { name, device, at });
    }

    /// Drains the residency model's peer-to-peer coherence log (shared
    /// managed ranges: read duplications, write invalidations).
    fn take_peer_transfers(&mut self) -> Vec<accel_sim::PeerTransfer> {
        self.engine
            .residency_mut()
            .map(|res| res.take_peer_transfers())
            .unwrap_or_default()
    }

    /// Surfaces drained coherence operations as `PeerMigrate` callbacks
    /// carrying source *and* destination devices.
    fn emit_peer_transfers(
        &mut self,
        launch: accel_sim::LaunchId,
        transfers: Vec<accel_sim::PeerTransfer>,
    ) {
        if transfers.is_empty() {
            return;
        }
        let at = self.engine.host_now();
        for t in transfers {
            self.emit(NvCallback::PeerMigrate {
                launch,
                src: t.src,
                dst: t.dst,
                duplicated_pages: t.duplicated_pages,
                invalidated_pages: t.invalidated_pages,
                bytes: t.bytes,
                stall_ns: t.stall_ns,
                at,
            });
        }
    }

    /// Replays the prefetch plan entry for the next launch, charging the
    /// non-overlapped stall to the launch stream.
    fn run_prefetch_plan(&mut self, stream: StreamId) {
        let Some(plan) = self.prefetch_plan.as_ref() else {
            return;
        };
        let ranges: Vec<uvm_sim::Range> = plan.ranges_for(self.launches_seen as usize).to_vec();
        if ranges.is_empty() {
            return;
        }
        let device = self.current;
        let mut stall_total = 0u64;
        if let Some(res) = self.engine.residency_mut() {
            for r in &ranges {
                stall_total += res.prefetch(device, r.base, r.len);
            }
        }
        if stall_total > 0 {
            let t = self.engine.device(device).stream_time(stream);
            self.engine
                .device_mut(device)
                .set_stream_time(stream, t + stall_total);
        }
        // Plan prefetches over shared ranges may have read-duplicated
        // pages; drain their transfers here, attributed to the launch
        // being issued, so they never bleed into the launch's own drain
        // (whose stall arithmetic assumes launch-time transfers only).
        let transfers = self.take_peer_transfers();
        self.emit_peer_transfers(accel_sim::LaunchId(self.launches_seen), transfers);
        let at = self.engine.host_now();
        for r in ranges {
            self.emit(NvCallback::BatchMemOp {
                device,
                op: "cudaMemPrefetchAsync(plan)",
                addr: r.base,
                bytes: r.len,
                at,
            });
        }
    }
}

impl DeviceRuntime for CudaContext {
    fn vendor(&self) -> Vendor {
        Vendor::Nvidia
    }

    fn device_count(&self) -> usize {
        self.engine.device_ids().len()
    }

    fn set_device(&mut self, device: DeviceId) -> Result<(), AccelError> {
        if device.index() >= self.device_count() {
            return Err(AccelError::UnknownDevice(device));
        }
        self.current = device;
        Ok(())
    }

    fn current_device(&self) -> DeviceId {
        self.current
    }

    fn malloc(&mut self, bytes: u64) -> Result<accel_sim::DevicePtr, AccelError> {
        self.emit_api("cudaMalloc");
        let alloc = self.engine.malloc_info(self.current, bytes)?;
        let at = self.engine.host_now();
        let (device, addr) = (self.current, alloc.addr);
        self.emit(NvCallback::MemoryAlloc {
            device,
            addr,
            bytes,
            managed: false,
            at,
        });
        self.emit_api_exit("cudaMalloc");
        Ok(accel_sim::DevicePtr(addr))
    }

    fn malloc_managed(&mut self, bytes: u64) -> Result<accel_sim::DevicePtr, AccelError> {
        self.emit_api("cudaMallocManaged");
        let alloc = self.engine.malloc_managed(bytes)?;
        if let Some(res) = self.engine.residency_mut() {
            res.register(alloc.addr, bytes);
        }
        let at = self.engine.host_now();
        let (device, addr) = (self.current, alloc.addr);
        self.emit(NvCallback::MemoryAlloc {
            device,
            addr,
            bytes,
            managed: true,
            at,
        });
        self.emit_api_exit("cudaMallocManaged");
        Ok(accel_sim::DevicePtr(addr))
    }

    fn free(&mut self, ptr: accel_sim::DevicePtr) -> Result<(), AccelError> {
        self.emit_api("cudaFree");
        let addr = ptr.addr();
        let alloc = if Engine::is_managed_addr(addr) {
            let alloc = self.engine.free_managed(addr)?;
            if let Some(res) = self.engine.residency_mut() {
                res.unregister(addr);
            }
            alloc
        } else {
            self.engine.free(self.current, addr)?
        };
        let at = self.engine.host_now();
        let (device, bytes) = (self.current, alloc.size);
        self.emit(NvCallback::MemoryFree {
            device,
            addr,
            bytes,
            at,
        });
        self.emit_api_exit("cudaFree");
        Ok(())
    }

    fn memcpy(
        &mut self,
        dst: accel_sim::DevicePtr,
        src: accel_sim::DevicePtr,
        bytes: u64,
        dir: CopyDirection,
    ) -> Result<(), AccelError> {
        self.emit_api("cudaMemcpy");
        self.engine.memcpy(self.current, dst, src, bytes, dir)?;
        let at = self.engine.host_now();
        let device = self.current;
        self.emit(NvCallback::Memcpy {
            device,
            direction: dir,
            bytes,
            at,
        });
        self.emit_api_exit("cudaMemcpy");
        Ok(())
    }

    fn memset(&mut self, dst: accel_sim::DevicePtr, bytes: u64) -> Result<(), AccelError> {
        self.emit_api("cudaMemset");
        self.engine.memset(self.current, dst, bytes)?;
        let at = self.engine.host_now();
        let (device, addr) = (self.current, dst.addr());
        self.emit(NvCallback::Memset {
            device,
            addr,
            bytes,
            at,
        });
        self.emit_api_exit("cudaMemset");
        Ok(())
    }

    fn launch_on(
        &mut self,
        stream: StreamId,
        desc: KernelDesc,
    ) -> Result<LaunchRecord, AccelError> {
        self.emit_api("cuLaunchKernel");
        self.run_prefetch_plan(stream);
        let record = self.engine.launch(self.current, stream, &desc)?;
        self.launches_seen += 1;
        self.emit(NvCallback::LaunchBegin {
            launch: record.launch,
            device: record.device,
            stream,
            name: record.name.clone(),
            grid: record.grid,
            block: record.block,
            start: record.start,
        });
        self.emit(NvCallback::LaunchEnd {
            launch: record.launch,
            device: record.device,
            end: record.end,
        });
        // UVM activity reports the *faulting* device — the device the
        // kernel ran on (`record.device`), never `self.current`, which on
        // a shared multi-device context may point elsewhere by the time
        // the fault buffer drains. The sharded hub routes on this field.
        // The launch's total UVM stall covers host faulting AND peer
        // coherence; the peer share is reported by the PeerMigrate
        // events below, so the UvmFault event carries only the host
        // remainder — tools summing both streams must not double-count.
        let transfers = self.take_peer_transfers();
        let peer_stall: u64 = transfers.iter().map(|t| t.stall_ns).sum();
        if record.uvm_faults > 0 || record.uvm_migrated_bytes > 0 || record.uvm_evicted_bytes > 0 {
            let at = self.engine.host_now();
            self.emit(NvCallback::UvmFault {
                launch: record.launch,
                device: record.device,
                groups: record.uvm_faults,
                migrated_bytes: record.uvm_migrated_bytes,
                evicted_bytes: record.uvm_evicted_bytes,
                stall_ns: record.uvm_stall_ns.saturating_sub(peer_stall),
                at,
            });
        }
        self.emit_peer_transfers(record.launch, transfers);
        self.emit_api_exit("cuLaunchKernel");
        Ok(record)
    }

    fn synchronize(&mut self) {
        self.emit_api("cudaDeviceSynchronize");
        self.engine.synchronize(self.current);
        let at = self.engine.host_now();
        let device = self.current;
        self.emit(NvCallback::Synchronize { device, at });
        self.emit_api_exit("cudaDeviceSynchronize");
    }

    fn device_capacity(&self) -> u64 {
        self.engine.device(self.current).usable_capacity()
    }

    fn host_time(&self) -> SimTime {
        self.engine.host_now()
    }

    fn mem_prefetch(&mut self, ptr: accel_sim::DevicePtr, bytes: u64) -> Result<(), AccelError> {
        self.emit_api("cudaMemPrefetchAsync");
        let device = self.current;
        let mut stall = 0;
        if let Some(res) = self.engine.residency_mut() {
            stall = res.prefetch(device, ptr.addr(), bytes);
        }
        if stall > 0 {
            let t = self.engine.device(device).stream_time(0);
            self.engine.device_mut(device).set_stream_time(0, t + stall);
        }
        let at = self.engine.host_now();
        self.emit(NvCallback::BatchMemOp {
            device,
            op: "cudaMemPrefetchAsync",
            addr: ptr.addr(),
            bytes,
            at,
        });
        // A prefetch of a shared range may have read-duplicated pages.
        // Prefetches front-run the launch that consumes them, so the
        // transfers carry the id of the *upcoming* launch (a forward
        // reference when no further launch is ever issued).
        let transfers = self.take_peer_transfers();
        self.emit_peer_transfers(accel_sim::LaunchId(self.launches_seen), transfers);
        self.emit_api_exit("cudaMemPrefetchAsync");
        Ok(())
    }

    fn mem_advise(
        &mut self,
        ptr: accel_sim::DevicePtr,
        bytes: u64,
        advice: MemAdvise,
    ) -> Result<(), AccelError> {
        self.emit_api("cudaMemAdvise");
        let device = self.current;
        let mapped = match advice {
            MemAdvise::PreferredLocationDevice => ResidencyAdvice::PinOnDevice,
            MemAdvise::PreferredLocationHost => ResidencyAdvice::PreferHost,
            MemAdvise::ReadMostly => ResidencyAdvice::ReadMostly,
            MemAdvise::Unset => ResidencyAdvice::Unset,
        };
        if let Some(res) = self.engine.residency_mut() {
            res.advise(device, ptr.addr(), bytes, mapped);
        }
        let at = self.engine.host_now();
        self.emit(NvCallback::BatchMemOp {
            device,
            op: "cudaMemAdvise",
            addr: ptr.addr(),
            bytes,
            at,
        });
        self.emit_api_exit("cudaMemAdvise");
        Ok(())
    }

    fn stats(&self, device: DeviceId) -> RuntimeStats {
        self.engine.stats(device)
    }

    fn residency(&self) -> Option<&dyn accel_sim::ResidencyModel> {
        self.engine.residency()
    }

    fn residency_mut(&mut self) -> Option<&mut dyn accel_sim::ResidencyModel> {
        self.engine.residency_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{Dim3, KernelBody};
    use parking_lot::Mutex;
    use std::sync::Arc;
    use uvm_sim::{Range, UvmConfig};

    fn ctx() -> CudaContext {
        CudaContext::new(vec![DeviceSpec::rtx_3060()])
    }

    fn collect_callbacks(ctx: &mut CudaContext) -> Arc<Mutex<Vec<String>>> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        ctx.subscribe(Box::new(move |cb| log2.lock().push(cb.cbid().to_owned())));
        log
    }

    #[test]
    fn malloc_free_emit_callbacks() {
        let mut c = ctx();
        let log = collect_callbacks(&mut c);
        let p = c.malloc(4096).unwrap();
        c.free(p).unwrap();
        let log = log.lock();
        assert!(log.contains(&"SANITIZER_CBID_MEMORY_ALLOC".to_owned()));
        assert!(log.contains(&"SANITIZER_CBID_MEMORY_FREE".to_owned()));
        assert!(log.contains(&"NV_API_ENTER".to_owned()));
    }

    #[test]
    fn launch_emits_begin_and_end() {
        let mut c = ctx();
        let log = collect_callbacks(&mut c);
        let p = c.malloc(1 << 20).unwrap();
        let desc = KernelDesc::new("k", Dim3::linear(16), Dim3::linear(128))
            .arg(p, 1 << 20)
            .body(KernelBody::streaming(1 << 19, 1 << 19));
        let rec = c.launch(desc).unwrap();
        assert!(rec.end > rec.start);
        let log = log.lock();
        assert!(log.contains(&"SANITIZER_CBID_LAUNCH_BEGIN".to_owned()));
        assert!(log.contains(&"SANITIZER_CBID_LAUNCH_END".to_owned()));
    }

    #[test]
    fn managed_alloc_round_trips_through_uvm() {
        let mut c = ctx();
        let mut uvm = UvmManager::new(UvmConfig::default());
        uvm.add_device(1 << 30, 12.0, 35_000);
        c.attach_uvm(uvm);
        let p = c.malloc_managed(32 << 20).unwrap();
        assert!(Engine::is_managed_addr(p.addr()));
        // A kernel touching the managed range pays faults.
        let desc = KernelDesc::new("k", Dim3::linear(256), Dim3::linear(256))
            .arg(p, 32 << 20)
            .body(KernelBody::streaming(16 << 20, 16 << 20));
        let rec = c.launch(desc).unwrap();
        assert!(rec.uvm_faults > 0, "cold managed pages fault");
        assert!(rec.uvm_stall_ns > 0);
        c.free(p).unwrap();
    }

    #[test]
    fn peer_and_fault_events_partition_the_launch_stall() {
        // A launch that both demand-faults a private region and
        // read-duplicates a shared one must report each nanosecond of
        // UVM stall exactly once: UvmFault carries the host share,
        // PeerMigrate the peer share, and they sum to the record's
        // total — tools adding both streams must not double-count.
        use accel_sim::AccessSpec;
        use uvm_sim::UvmConfig;
        let mut c = CudaContext::new(vec![DeviceSpec::rtx_3060(), DeviceSpec::rtx_3060()]);
        c.set_device(DeviceId(1)).unwrap();
        let mut uvm = UvmManager::new(UvmConfig::default());
        uvm.add_device(1 << 30, 12.0, 35_000);
        uvm.add_device(1 << 30, 12.0, 35_000);
        c.attach_uvm(uvm);
        let p = c.malloc_managed(8 << 20).unwrap();
        c.engine_mut()
            .residency_mut()
            .unwrap()
            .register_shared(p.addr(), 4 << 20, DeviceId(0));

        let stalls = Arc::new(Mutex::new((0u64, 0u64))); // (fault, peer)
        let stalls2 = Arc::clone(&stalls);
        c.subscribe(Box::new(move |cb| match cb {
            NvCallback::UvmFault { stall_ns, .. } => stalls2.lock().0 += stall_ns,
            NvCallback::PeerMigrate { stall_ns, .. } => stalls2.lock().1 += stall_ns,
            _ => {}
        }));
        // One launch covering shared head (peer-duplicates onto dev 1)
        // and private tail (host demand faults).
        let desc = KernelDesc::new("mixed", Dim3::linear(64), Dim3::linear(128))
            .arg(p, 8 << 20)
            .body(KernelBody::default().access(AccessSpec::load(0, 8 << 20)));
        let rec = c.launch(desc).unwrap();
        assert!(rec.uvm_peer_bytes > 0 && rec.uvm_migrated_bytes > 0);
        let (fault, peer) = *stalls.lock();
        assert!(fault > 0 && peer > 0, "both streams fired");
        assert_eq!(
            fault + peer,
            rec.uvm_stall_ns,
            "every stall nanosecond reported exactly once"
        );
        c.free(p).unwrap();
    }

    #[test]
    fn prefetch_plan_runs_before_launch() {
        let mut c = ctx();
        let mut uvm = UvmManager::new(UvmConfig::default());
        uvm.add_device(1 << 30, 12.0, 35_000);
        c.attach_uvm(uvm);
        let p = c.malloc_managed(32 << 20).unwrap();
        let mut plan = PrefetchPlan::default();
        plan.add(0, Range::new(p.addr(), 32 << 20));
        c.set_prefetch_plan(plan);
        let desc = KernelDesc::new("k", Dim3::linear(256), Dim3::linear(256))
            .arg(p, 32 << 20)
            .body(KernelBody::streaming(16 << 20, 16 << 20));
        let rec = c.launch(desc).unwrap();
        assert_eq!(rec.uvm_faults, 0, "prefetched pages do not fault");
    }

    #[test]
    fn mem_prefetch_and_advise_emit_batch_ops() {
        let mut c = ctx();
        let mut uvm = UvmManager::new(UvmConfig::default());
        uvm.add_device(1 << 30, 12.0, 35_000);
        c.attach_uvm(uvm);
        let log = collect_callbacks(&mut c);
        let p = c.malloc_managed(4 << 20).unwrap();
        c.mem_prefetch(p, 4 << 20).unwrap();
        c.mem_advise(p, 4 << 20, MemAdvise::PreferredLocationDevice)
            .unwrap();
        let n = log
            .lock()
            .iter()
            .filter(|s| *s == "SANITIZER_CBID_BATCH_MEMOP")
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn set_device_validates() {
        let mut c = ctx();
        assert!(c.set_device(DeviceId(5)).is_err());
        assert!(c.set_device(DeviceId(0)).is_ok());
        assert_eq!(c.current_device(), DeviceId(0));
    }

    #[test]
    fn rejects_amd_specs() {
        let r = std::panic::catch_unwind(|| CudaContext::new(vec![DeviceSpec::mi300x()]));
        assert!(r.is_err());
    }

    #[test]
    fn stats_accumulate_across_ops() {
        let mut c = ctx();
        let p = c.malloc(1 << 20).unwrap();
        c.memcpy(
            p,
            accel_sim::DevicePtr(0x1000),
            1 << 20,
            CopyDirection::HostToDevice,
        )
        .unwrap();
        c.synchronize();
        let s = c.stats(DeviceId(0));
        assert_eq!(s.allocs, 1);
        assert_eq!(s.copies, 1);
        assert_eq!(s.syncs, 1);
        assert_eq!(s.bytes_h2d, 1 << 20);
    }
}
