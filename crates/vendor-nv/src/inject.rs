//! Process-injection model.
//!
//! The paper (§IV-D) describes a practical multi-GPU pitfall: with
//! `LD_PRELOAD`, *every* spawned process gets instrumented — including
//! Megatron-LM's JIT-compilation helper processes that never create a CUDA
//! context, causing spurious initialization and runtime errors. PASTA
//! switched to `CUDA_INJECTION64_PATH`, which the CUDA driver honours only
//! in processes that actually initialize CUDA. This module captures that
//! decision table so the multi-GPU harness can assert it.

use serde::{Deserialize, Serialize};

/// How the profiler shared library reaches the target process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectionMethod {
    /// Loader-level preload: injected into every process of the tree.
    LdPreload,
    /// CUDA-driver-level injection: loaded only on CUDA context creation.
    CudaInjection64Path,
}

/// What a process in the launch tree does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessKind {
    /// A worker that creates a CUDA context (one per GPU, typically).
    CudaContextCreator,
    /// An auxiliary helper (e.g. a JIT-compilation subprocess) that never
    /// touches the GPU.
    Helper,
}

/// Whether the profiler ends up active inside the process.
pub fn should_instrument(method: InjectionMethod, kind: ProcessKind) -> bool {
    match method {
        InjectionMethod::LdPreload => true,
        InjectionMethod::CudaInjection64Path => kind == ProcessKind::CudaContextCreator,
    }
}

/// Whether an active profiler in this process is *spurious* (instrumented
/// but with no CUDA context — the failure mode the paper hit).
pub fn is_spurious(method: InjectionMethod, kind: ProcessKind) -> bool {
    should_instrument(method, kind) && kind == ProcessKind::Helper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ld_preload_instruments_helpers_spuriously() {
        assert!(should_instrument(
            InjectionMethod::LdPreload,
            ProcessKind::Helper
        ));
        assert!(is_spurious(InjectionMethod::LdPreload, ProcessKind::Helper));
    }

    #[test]
    fn cuda_injection_skips_helpers() {
        assert!(!should_instrument(
            InjectionMethod::CudaInjection64Path,
            ProcessKind::Helper
        ));
        assert!(!is_spurious(
            InjectionMethod::CudaInjection64Path,
            ProcessKind::Helper
        ));
    }

    #[test]
    fn workers_always_instrumented() {
        for m in [
            InjectionMethod::LdPreload,
            InjectionMethod::CudaInjection64Path,
        ] {
            assert!(should_instrument(m, ProcessKind::CudaContextCreator));
            assert!(!is_spurious(m, ProcessKind::CudaContextCreator));
        }
    }
}
