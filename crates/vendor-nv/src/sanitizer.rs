//! Compute Sanitizer facade.
//!
//! Mirrors the NVIDIA Compute Sanitizer API surface PASTA uses (§IV-C):
//! `sanitizerSubscribe`-style host callbacks come from
//! [`crate::CudaContext::subscribe`]; this module provides the *device*
//! side — patching memory/barrier instructions and collecting their traces
//! — via [`attach`], the analogue of `sanitizerEnableDomain` +
//! `sanitizerPatchModule`.

use crate::cuda::CudaContext;
use accel_sim::instrument::{BackendCosts, ProfilerHandle, TraceProfiler};
use accel_sim::trace::TraceBufferModel;
use accel_sim::{AnalysisMode, InstrCoverage};
use serde::{Deserialize, Serialize};

/// Configuration of a Compute Sanitizer attachment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizerConfig {
    /// Where trace analysis runs (paper Fig. 2).
    pub mode: AnalysisMode,
    /// Record sampling factor (`ACCEL_PROF_ENV_SAMPLE_RATE`); 1 = all.
    pub sampling_rate: u32,
    /// Device trace-buffer size in bytes (CPU-post-process mode).
    pub buffer_bytes: u64,
    /// Width of the on-device analysis thread group (GPU-resident mode).
    pub gpu_analysis_threads: u64,
}

impl SanitizerConfig {
    /// PASTA's GPU-resident collect-and-analyze configuration (CS-GPU).
    pub fn gpu_resident() -> Self {
        SanitizerConfig {
            mode: AnalysisMode::GpuResident,
            sampling_rate: 1,
            buffer_bytes: 4 << 20,
            gpu_analysis_threads: 4_096,
        }
    }

    /// The conventional CPU-analysis configuration (CS-CPU), as in the
    /// Compute Sanitizer MemoryTracker sample tool.
    pub fn cpu_post_process() -> Self {
        SanitizerConfig {
            mode: AnalysisMode::CpuPostProcess,
            ..SanitizerConfig::gpu_resident()
        }
    }

    /// Overrides the sampling rate.
    pub fn with_sampling(mut self, rate: u32) -> Self {
        self.sampling_rate = rate.max(1);
        self
    }

    /// Overrides the analysis thread-group width (ablation knob).
    pub fn with_analysis_threads(mut self, threads: u64) -> Self {
        self.gpu_analysis_threads = threads.max(1);
        self
    }

    /// Overrides the trace-buffer size (ablation knob).
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig::gpu_resident()
    }
}

/// Attaches Compute Sanitizer instrumentation to a CUDA context and returns
/// the handle for wiring a sink and reading the overhead breakdown.
///
/// Equivalent to `sanitizerEnableDomain` + `sanitizerPatchModule` in the
/// real API: after this call, every kernel's memory and barrier
/// instructions are patched.
pub fn attach(ctx: &mut CudaContext, config: SanitizerConfig) -> ProfilerHandle {
    let costs = BackendCosts {
        buffer: TraceBufferModel::with_bytes(config.buffer_bytes),
        gpu_analysis_threads: config.gpu_analysis_threads,
        ..BackendCosts::sanitizer()
    };
    let link_bw = ctx.link_bandwidths();
    let (profiler, handle) = TraceProfiler::new(
        InstrCoverage::MemoryAndBarrier,
        config.mode,
        costs,
        link_bw,
        config.sampling_rate,
    );
    ctx.install_profiler(Box::new(profiler));
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;

    #[test]
    fn config_presets_differ_in_mode_only() {
        let gpu = SanitizerConfig::gpu_resident();
        let cpu = SanitizerConfig::cpu_post_process();
        assert_eq!(gpu.mode, AnalysisMode::GpuResident);
        assert_eq!(cpu.mode, AnalysisMode::CpuPostProcess);
        assert_eq!(gpu.buffer_bytes, cpu.buffer_bytes);
    }

    #[test]
    fn builder_knobs() {
        let c = SanitizerConfig::gpu_resident()
            .with_sampling(0)
            .with_analysis_threads(0)
            .with_buffer_bytes(1 << 20);
        assert_eq!(c.sampling_rate, 1, "sampling clamps to 1");
        assert_eq!(c.gpu_analysis_threads, 1, "threads clamp to 1");
        assert_eq!(c.buffer_bytes, 1 << 20);
    }

    #[test]
    fn attach_installs_probe() {
        let mut ctx = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        assert!(!ctx.has_profiler());
        let _handle = attach(&mut ctx, SanitizerConfig::gpu_resident());
        assert!(ctx.has_profiler());
    }
}
